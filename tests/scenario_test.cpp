#include <gtest/gtest.h>

#include <cmath>

#include "src/balls/random_states.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/balls/static_alloc.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/summary.hpp"

namespace recover::balls {
namespace {

TEST(ScenarioA, PreservesBallCountAndInvariants) {
  rng::Xoshiro256PlusPlus eng(3);
  ScenarioAChain<AbkuRule> chain(LoadVector::all_in_one(8, 24), AbkuRule(2));
  for (int t = 0; t < 2000; ++t) chain.step(eng);
  EXPECT_EQ(chain.balls(), 24);
  EXPECT_TRUE(chain.state().invariants_hold());
}

TEST(ScenarioB, PreservesBallCountAndInvariants) {
  rng::Xoshiro256PlusPlus eng(4);
  ScenarioBChain<AbkuRule> chain(LoadVector::all_in_one(8, 24), AbkuRule(2));
  for (int t = 0; t < 2000; ++t) chain.step(eng);
  EXPECT_EQ(chain.balls(), 24);
  EXPECT_TRUE(chain.state().invariants_hold());
}

TEST(ScenarioA, WorksWithAdaptiveRule) {
  rng::Xoshiro256PlusPlus eng(5);
  ScenarioAChain<AdapRule> chain(
      LoadVector::balanced(10, 10),
      AdapRule{ThresholdSchedule::linear(1, 1, 4)});
  for (int t = 0; t < 2000; ++t) chain.step(eng);
  EXPECT_EQ(chain.balls(), 10);
  EXPECT_TRUE(chain.state().invariants_hold());
}

TEST(ScenarioB, SingleBallNeverLost) {
  // m = 1 exercises the s = 1 boundary of ℬ(v) on every step.
  rng::Xoshiro256PlusPlus eng(6);
  ScenarioBChain<AbkuRule> chain(LoadVector::all_in_one(4, 1), AbkuRule(2));
  for (int t = 0; t < 500; ++t) {
    chain.step(eng);
    ASSERT_EQ(chain.balls(), 1);
    ASSERT_TRUE(chain.state().invariants_hold());
  }
}

TEST(RemovalPmf, ScenarioAIsBallWeighted) {
  const LoadVector v = LoadVector::from_loads({3, 1, 0});
  const auto pmf = scenario_a_removal_pmf(v);
  EXPECT_DOUBLE_EQ(pmf[0], 0.75);
  EXPECT_DOUBLE_EQ(pmf[1], 0.25);
  EXPECT_DOUBLE_EQ(pmf[2], 0.0);
}

TEST(RemovalPmf, ScenarioBIsNonEmptyUniform) {
  const LoadVector v = LoadVector::from_loads({3, 1, 0});
  const auto pmf = scenario_b_removal_pmf(v);
  EXPECT_DOUBLE_EQ(pmf[0], 0.5);
  EXPECT_DOUBLE_EQ(pmf[1], 0.5);
  EXPECT_DOUBLE_EQ(pmf[2], 0.0);
}

TEST(ScenarioA, StationaryMaxLoadDropsWithTwoChoices) {
  // The qualitative Azar et al. result: after burn-in, d = 2 keeps the
  // max load far below d = 1 at m = n.
  const std::size_t n = 256;
  const auto run = [&](int d, std::uint64_t seed) {
    rng::Xoshiro256PlusPlus eng(seed);
    ScenarioAChain<AbkuRule> chain(
        LoadVector::balanced(n, static_cast<std::int64_t>(n)), AbkuRule(d));
    for (int t = 0; t < 30000; ++t) chain.step(eng);
    stats::IntHistogram h;
    for (int t = 0; t < 20000; ++t) {
      chain.step(eng);
      if (t % 20 == 0) h.add(chain.state().max_load());
    }
    return h.mean();
  };
  const double one_choice = run(1, 11);
  const double two_choice = run(2, 12);
  EXPECT_LT(two_choice + 1.0, one_choice);
  EXPECT_LE(two_choice, 6.0);
}

TEST(StaticAlloc, BallConservationAndSkew) {
  rng::Xoshiro256PlusPlus eng(21);
  const LoadVector v = allocate_static(64, 64, AbkuRule(2), eng);
  EXPECT_EQ(v.balls(), 64);
  EXPECT_TRUE(v.invariants_hold());
  const LoadVector u = allocate_uniform(64, 64, eng);
  EXPECT_EQ(u.balls(), 64);
}

TEST(StaticAlloc, TwoChoicesBeatOneChoice) {
  rng::Xoshiro256PlusPlus eng(22);
  stats::Summary one, two;
  const std::size_t n = 512;
  for (int rep = 0; rep < 10; ++rep) {
    one.add(static_cast<double>(
        allocate_uniform(n, static_cast<std::int64_t>(n), eng).max_load()));
    two.add(static_cast<double>(
        allocate_static(n, static_cast<std::int64_t>(n), AbkuRule(2), eng)
            .max_load()));
  }
  EXPECT_LT(two.mean(), one.mean());
}

TEST(StaticAlloc, PredictionsOrdered) {
  // ln n / ln ln n ≫ ln ln n / ln d for moderate n.
  EXPECT_GT(predicted_max_load_one_choice(1024),
            predicted_max_load_abku(1024, 2));
  EXPECT_GT(predicted_max_load_abku(1024, 2),
            predicted_max_load_abku(1024, 4));
}

struct SweepParam {
  std::size_t n;
  std::int64_t m;
  int d;
};

class ScenarioSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScenarioSweepTest, BothScenariosConserveInvariantsUnderSweep) {
  const auto [n, m, d] = GetParam();
  rng::Xoshiro256PlusPlus eng(n * 7919 + static_cast<std::uint64_t>(m));
  ScenarioAChain<AbkuRule> a(LoadVector::piled(n, m, std::max<std::size_t>(
                                                         1, n / 3)),
                             AbkuRule(d));
  ScenarioBChain<AbkuRule> b(LoadVector::piled(n, m, std::max<std::size_t>(
                                                         1, n / 3)),
                             AbkuRule(d));
  for (int t = 0; t < 1500; ++t) {
    a.step(eng);
    b.step(eng);
  }
  EXPECT_TRUE(a.state().invariants_hold());
  EXPECT_TRUE(b.state().invariants_hold());
  EXPECT_EQ(a.balls(), m);
  EXPECT_EQ(b.balls(), m);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScenarioSweepTest,
    ::testing::Values(SweepParam{2, 2, 1}, SweepParam{4, 16, 2},
                      SweepParam{16, 8, 2}, SweepParam{32, 32, 3},
                      SweepParam{64, 200, 2}, SweepParam{7, 13, 4}));

}  // namespace
}  // namespace recover::balls
