// Quickstart: measure the recovery time of a dynamic allocation process.
//
// We crash a system of n servers by piling all n jobs onto one server,
// run the I_A-ABKU[2] dynamics (each step: a random job finishes, a new
// job goes to the less loaded of 2 random servers), and watch the maximum
// load fall back to its typical value.  Theorem 1 predicts recovery
// within ~ m ln m steps; the fluid model predicts the typical max load.
//
//   ./quickstart --n 256 --d 2
#include <cstdio>

#include "src/balls/load_vector.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/core/path_coupling.hpp"
#include "src/core/recovery.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/util/cli.hpp"
#include "src/util/sparkline.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("quickstart", "recovery of I_A-ABKU[d] from a crash state");
  cli.flag("n", "number of bins (= number of balls)", "256");
  cli.flag("d", "choices per placement", "2");
  cli.flag("seed", "rng seed", "1");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto d = static_cast<int>(cli.integer("d"));
  const auto m = static_cast<std::int64_t>(n);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  // 1. What does "recovered" mean?  Ask the fluid model for the typical
  //    stationary max load.
  fluid::FluidModel model(fluid::Scenario::kA, d, 1.0, 24);
  const auto profile = model.fixed_point();
  const auto typical = fluid::FluidModel::predicted_max_load(
      profile, static_cast<double>(n));
  std::printf("typical stationary max load (fluid prediction): %lld\n",
              static_cast<long long>(typical));

  // 2. Crash the system and follow the max load back down.
  balls::ScenarioAChain<balls::AbkuRule> chain(
      balls::LoadVector::all_in_one(n, m), balls::AbkuRule(d));
  core::TrajectoryOptions opts;
  opts.max_steps = 8 * static_cast<std::int64_t>(
                           core::theorem1_bound(m, 0.25));
  opts.sample_interval = std::max<std::int64_t>(1, m / 16);
  const auto series = core::record_trajectory(
      chain,
      [](const auto& c) { return static_cast<double>(c.state().max_load()); },
      opts, seed);

  const std::int64_t hit = core::first_sustained_entry(
      series, 0.0, static_cast<double>(typical + 1), 8);

  util::Table table({"what", "steps"});
  table.row().add("Theorem 1 bound  m ln(m/eps), eps=1/4");
  table.integer(static_cast<std::int64_t>(core::theorem1_bound(m, 0.25)));
  table.row().add("observed recovery (sustained max load <= typical+1)");
  table.integer(hit < 0 ? -1 : (hit + 1) * opts.sample_interval);
  std::printf("%s", table.to_string().c_str());

  std::printf("\nmax-load trajectory (one column = %lld steps):\n  %s\n",
              static_cast<long long>(opts.sample_interval),
              util::sparkline(series, 64).c_str());
  return 0;
}
