// Experiment E12 — §7 relocation processes: scenario A augmented with a
// per-step budget of r relocations (a ball from a fullest bin is
// re-placed with the rule).  The paper defers the analysis to the full
// version; this ablation quantifies how much limited relocation buys:
// recovery from a crash accelerates roughly by the relocation budget,
// while the stationary max load tightens toward the balanced floor.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/recovery.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/kernel/kernel.hpp"
#include "src/obs/run_record.hpp"
#include "src/open/relocation.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp12_relocation",
                "E12/#7: recovery speedup from limited relocation");
  cli.flag("n", "bins = balls", "256");
  cli.flag("budgets", "comma-separated relocations per step", "0,1,2,4");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("replicas", "replicas per point", "12");
  cli.flag("seed", "rng seed", "12");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto m = static_cast<std::int64_t>(n);
  const auto budgets = cli.int_list("budgets");
  const auto d = static_cast<int>(cli.integer("d"));
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const double nd = static_cast<double>(n);

  fluid::FluidModel model(fluid::Scenario::kA, d, 1.0, 24);
  const auto typical =
      fluid::FluidModel::predicted_max_load(model.fixed_point(), nd);

  util::Table table({"relocations/step", "T_recover", "ci95", "speedup",
                     "stationary_maxload", "censored"});

  double baseline = -1;
  for (const std::int64_t r : budgets) {
    core::TrajectoryOptions opts;
    opts.sample_interval = std::max<std::int64_t>(1, m / 16);
    opts.max_steps = static_cast<std::int64_t>(60.0 * nd * std::log(nd));
    const auto stats = core::measure_recovery(
        [&](int) {
          return open::RelocatingChainA<balls::AbkuRule>(
              balls::LoadVector::all_in_one(n, m), balls::AbkuRule(d),
              static_cast<int>(r));
        },
        [](const auto& c) {
          return static_cast<double>(c.state().max_load());
        },
        0.0, static_cast<double>(typical + 1), 8, replicas, opts, seed);

    // Stationary max load with the same budget.
    rng::Xoshiro256PlusPlus eng(seed + static_cast<std::uint64_t>(r) + 100);
    open::RelocatingChainA<balls::AbkuRule> chain(
        balls::LoadVector::balanced(n, m), balls::AbkuRule(d),
        static_cast<int>(r));
    kernel::advance(chain, eng, 20000);
    stats::IntHistogram hist;
    for (int s = 0; s < 300; ++s) {
      kernel::advance(chain, eng, 50);
      hist.add(chain.state().max_load());
    }

    const double t_mean = stats.hitting_steps.mean();
    if (baseline < 0 && stats.censored == 0) baseline = t_mean;
    table.row()
        .integer(r)
        .num(t_mean, 1)
        .num(stats.hitting_steps.ci_halfwidth(), 1)
        .num(baseline > 0 && t_mean > 0 ? baseline / t_mean : 0.0, 2)
        .num(hist.mean(), 2)
        .integer(stats.censored);
  }
  table.print(std::cout);
  run.add_table("relocation_speedup", table);
  std::printf(
      "\n# Each unit of relocation budget multiplies the per-step repair "
      "work, so the crash-recovery time drops roughly proportionally while "
      "the stationary max load approaches the balanced floor.\n");
  return 0;
}
