// The paper's Γ-coupling for scenario B (§5, Claims 5.1 and 5.2).
//
// For Δ(v, u) = 1 write v = u + e_λ − e_δ (the paper takes λ < δ w.l.o.g.;
// we swap roles internally when the surplus follows the deficit).  Let
// s₁, s₂ be the non-empty bin counts of v and u.  Removal couples the
// uniform non-empty-bin draws:
//
//   s₁ = s₂ = s (Claim 5.1):  i uniform on [s];  i* = δ if i = λ,
//                             i* = λ if i = δ, else i* = i.
//   s₂ = s₁ + 1 (Claim 5.2, the deficit bin of v is empty, δ = s₁):
//                             i* uniform on [s₂]; i = λ if i* = δ;
//                             i = i* if i* ∉ {λ, δ};
//                             i fresh-uniform on [s₁] if i* = λ.
//
// Both claims give E[Δ(v*, u*)] ≤ 1, and the distance moves with
// probability Ω(1/s) per phase (the i = λ pick merges the copies with
// probability exactly 1/s₁ resp. 1/s₂, and merged copies stay merged
// through the shared-probe insertion).  With s ≤ n, Path Coupling Lemma
// case (2) with D = m and α = Ω(1/n) yields Claim 5.3's mixing bound
// τ(ε) = O(n m² ln ε⁻¹).
#pragma once

#include "src/balls/coupling_common.hpp"
#include "src/rng/distributions.hpp"

namespace recover::balls {

namespace detail {

/// Removal half of the coupling, for a = b + e_λ − e_δ with λ < δ.
template <typename Engine>
void coupled_remove_b(LoadVector& a, LoadVector& b, std::size_t lambda,
                      std::size_t delta, Engine& eng) {
  const std::size_t s1 = a.nonempty_count();
  const std::size_t s2 = b.nonempty_count();
  if (s1 == s2) {
    const auto i = static_cast<std::size_t>(rng::uniform_below(eng, s1));
    std::size_t istar = i;
    if (i == lambda) {
      istar = delta;
    } else if (i == delta) {
      istar = lambda;
    }
    a.remove_at(i);
    b.remove_at(istar);
    return;
  }
  // Claim 5.2 case: v's deficit bin is empty, so u has one extra
  // non-empty bin and that bin is exactly δ.
  RL_DBG_ASSERT(s2 == s1 + 1);
  RL_DBG_ASSERT(delta == s1);
  const auto istar = static_cast<std::size_t>(rng::uniform_below(eng, s2));
  std::size_t i;
  if (istar == delta) {
    i = lambda;
  } else if (istar == lambda) {
    i = static_cast<std::size_t>(rng::uniform_below(eng, s1));
  } else {
    i = istar;
  }
  a.remove_at(i);
  b.remove_at(istar);
}

}  // namespace detail

/// One coupled phase of I_B on a Γ-pair (Δ(v,u) must be 1).
template <typename Rule, typename Engine>
GammaStepResult coupled_step_b(LoadVector& v, LoadVector& u, const Rule& rule,
                               Engine& eng) {
  RL_REQUIRE(v.distance(u) == 1);
  const auto [lambda, delta] = unit_difference(v, u);
  if (lambda < delta) {
    detail::coupled_remove_b(v, u, lambda, delta, eng);
  } else {
    // v = u + e_λ − e_δ with λ > δ means u = v + e_δ − e_λ with δ < λ:
    // run the coupling with the roles of the copies exchanged (a coupling
    // for (u, v) is a coupling for (v, u)).
    detail::coupled_remove_b(u, v, delta, lambda, eng);
  }

  GammaStepResult result;
  result.distance_after_removal = v.distance(u);
  result.removal_merged = (result.distance_after_removal == 0);
  coupled_place(rule, v, u, eng);
  result.distance_after = v.distance(u);
  return result;
}

}  // namespace recover::balls
