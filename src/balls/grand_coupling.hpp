// Grand couplings: full couplings of two copies of I_A / I_B from
// *arbitrary* state pairs, used to measure coalescence times.
//
// The Path Coupling Lemma only needs a coupling on adjacent pairs Γ; a
// simulation that starts two copies at extremal states needs a coupling
// defined everywhere.  We use the natural quantile couplings:
//
//   scenario A — draw one shared ball rank t uniform on [0, m) and remove
//     the bin holding the t-th ball (in sorted order) in each copy; each
//     marginal is exactly 𝒜(v).
//   scenario B — draw one shared quantile w uniform on [0, 1) and remove
//     bin ⌊w·s⌋ in a copy with s non-empty bins; each marginal is ℬ(v).
//
// Insertions share the probe sequence (Lemma 3.3), so once the copies
// meet they move identically forever; the first meeting time
// stochastically dominates the TV mixing behaviour and is the standard
// simulation-side estimate of the recovery time.  exp09 validates it
// against exact mixing times on small state spaces.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>

#include "src/balls/coupling_common.hpp"
#include "src/kernel/choice_block.hpp"
#include "src/rng/distributions.hpp"

namespace recover::balls {

template <typename Rule>
class GrandCouplingA {
 public:
  GrandCouplingA(LoadVector x, LoadVector y, Rule rule)
      : x_(std::move(x)), y_(std::move(y)), rule_(std::move(rule)) {
    RL_REQUIRE(x_.bins() == y_.bins());
    RL_REQUIRE(x_.balls() == y_.balls());
    RL_REQUIRE(x_.balls() > 0);
  }

  template <typename Engine>
  void step(Engine& eng) {
    const auto t = static_cast<std::int64_t>(rng::uniform_below(
        eng, static_cast<std::uint64_t>(x_.balls())));
    x_.remove_at(x_.ball_at_quantile(t));
    y_.remove_at(y_.ball_at_quantile(t));
    coupled_place(rule_, x_, y_, eng);
  }

  /// Lockstep batched advance: both copies walk through one shared
  /// pre-drawn choice block (one lead + d shared probes per step) — the
  /// grand-coupling structure itself, so the coupling stays faithful by
  /// construction.  Byte-identical to `steps` calls to step().
  template <typename Engine>
  void step_block(Engine& eng, std::int64_t steps) {
    if constexpr (std::is_same_v<Rule, AbkuRule>) {
      if (rule_.d() <= kernel::kMaxBatchedProbes) {
        step_block_batched(eng, steps);
        return;
      }
    }
    for (std::int64_t k = 0; k < steps; ++k) step(eng);
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.distance(y_); }
  [[nodiscard]] const LoadVector& first() const { return x_; }
  [[nodiscard]] const LoadVector& second() const { return y_; }

 private:
  // Instantiated only for AbkuRule (guarded by if constexpr above).
  template <typename Engine>
  void step_block_batched(Engine& eng, std::int64_t steps) {
    const auto n = static_cast<std::uint64_t>(x_.bins());
    const auto m = static_cast<std::uint64_t>(x_.balls());
    kernel::DChoiceBatch batch;
    std::int64_t remaining = steps;
    while (remaining > 0) {
      const auto chunk = static_cast<std::size_t>(std::min<std::int64_t>(
          remaining, static_cast<std::int64_t>(kernel::kBatchSteps)));
      batch.fill(eng, n, rule_.d(), chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        bool lead_ok;
        const std::uint64_t t =
            kernel::lemire_map(batch.lead_raw(i), m, lead_ok);
        if (!lead_ok || batch.probe_unsafe(i)) {
          auto replay = batch.replay_from(eng, i);
          for (std::int64_t k = static_cast<std::int64_t>(i); k < remaining;
               ++k) {
            step(replay);
          }
          return;
        }
        const auto rank = static_cast<std::int64_t>(t);
        x_.remove_at(x_.ball_at_quantile(rank));
        y_.remove_at(y_.ball_at_quantile(rank));
        // Shared probes, shared running max: the ABKU placement is the
        // same sorted index in both copies (Lemma 3.3 / Φ_D = identity).
        const auto c = static_cast<std::size_t>(batch.choice(i));
        x_.add_at(c);
        y_.add_at(c);
      }
      remaining -= static_cast<std::int64_t>(chunk);
    }
  }

  LoadVector x_;
  LoadVector y_;
  Rule rule_;
};

template <typename Rule>
class GrandCouplingB {
 public:
  GrandCouplingB(LoadVector x, LoadVector y, Rule rule)
      : x_(std::move(x)), y_(std::move(y)), rule_(std::move(rule)) {
    RL_REQUIRE(x_.bins() == y_.bins());
    RL_REQUIRE(x_.balls() == y_.balls());
    RL_REQUIRE(x_.balls() > 0);
  }

  template <typename Engine>
  void step(Engine& eng) {
    const double w = rng::uniform_real(eng);
    remove_shared_quantile(w);
    coupled_place(rule_, x_, y_, eng);
  }

  /// Lockstep batched advance; see GrandCouplingA::step_block.  The
  /// shared removal quantile is a uniform real — exactly one word, never
  /// redrawn — so only probe words can force the scalar bail-out.
  template <typename Engine>
  void step_block(Engine& eng, std::int64_t steps) {
    if constexpr (std::is_same_v<Rule, AbkuRule>) {
      if (rule_.d() <= kernel::kMaxBatchedProbes) {
        step_block_batched(eng, steps);
        return;
      }
    }
    for (std::int64_t k = 0; k < steps; ++k) step(eng);
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.distance(y_); }
  [[nodiscard]] const LoadVector& first() const { return x_; }
  [[nodiscard]] const LoadVector& second() const { return y_; }

 private:
  void remove_shared_quantile(double w) {
    const auto pick = [w](const LoadVector& v) {
      const auto s = static_cast<double>(v.nonempty_count());
      auto i = static_cast<std::size_t>(w * s);
      if (i >= v.nonempty_count()) i = v.nonempty_count() - 1;
      return i;
    };
    x_.remove_at(pick(x_));
    y_.remove_at(pick(y_));
  }

  // Instantiated only for AbkuRule (guarded by if constexpr above).
  template <typename Engine>
  void step_block_batched(Engine& eng, std::int64_t steps) {
    const auto n = static_cast<std::uint64_t>(x_.bins());
    kernel::DChoiceBatch batch;
    std::int64_t remaining = steps;
    while (remaining > 0) {
      const auto chunk = static_cast<std::size_t>(std::min<std::int64_t>(
          remaining, static_cast<std::int64_t>(kernel::kBatchSteps)));
      batch.fill(eng, n, rule_.d(), chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        if (batch.probe_unsafe(i)) {
          auto replay = batch.replay_from(eng, i);
          for (std::int64_t k = static_cast<std::int64_t>(i); k < remaining;
               ++k) {
            step(replay);
          }
          return;
        }
        // Same mapping as rng::uniform_real on this word.
        const double w =
            static_cast<double>(batch.lead_raw(i) >> 11) * 0x1.0p-53;
        remove_shared_quantile(w);
        const auto c = static_cast<std::size_t>(batch.choice(i));
        x_.add_at(c);
        y_.add_at(c);
      }
      remaining -= static_cast<std::int64_t>(chunk);
    }
  }

  LoadVector x_;
  LoadVector y_;
  Rule rule_;
};

}  // namespace recover::balls
