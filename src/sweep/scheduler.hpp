// Sweep execution: a work-stealing cell scheduler on top of the
// recover::parallel fork-join pool, and the engine that ties grid,
// registry, and checkpoint together.
//
// Scheduling never influences results: every cell draws randomness only
// from rng::substream(master_seed, cell.index), and the aggregate table
// is assembled in grid order from a per-cell slot, so a 1-thread run, an
// 8-thread run, a sharded run, and a checkpoint-resumed run are
// byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/parallel/thread_pool.hpp"
#include "src/sweep/grid.hpp"
#include "src/util/table.hpp"

namespace recover::sweep {

/// Executes fn(item) once for every entry of `items`, dynamically load
/// balanced: each pool participant owns a deque seeded round-robin and
/// steals the bigger half from the fullest victim when it runs dry.
/// Dynamic balancing (unlike the pool's static chunking) is what keeps
/// the hardware saturated when cell costs vary by orders of magnitude
/// across a grid.  fn must be safe to call concurrently.
void run_work_stealing(const std::vector<std::uint64_t>& items,
                       const std::function<void(std::uint64_t)>& fn,
                       parallel::ThreadPool& pool);

struct SweepOptions {
  std::string exp;                  // registry name, e.g. "exp01"
  std::uint64_t seed = 1;           // master seed (cells use substreams)
  std::string checkpoint_path;      // empty = no checkpointing
  int shard_index = 0;              // this process runs cells with
  int shard_count = 1;              //   index % shard_count == shard_index
  parallel::ThreadPool* pool = nullptr;  // nullptr = global pool
};

struct SweepReport {
  /// One row per cell of this shard, in grid order: axis columns then the
  /// experiment's result columns (values formatted via the shortest
  /// round-trip policy, so resumed and fresh rows are byte-identical).
  util::Table table{std::vector<std::string>{"key"}};
  std::uint64_t cells_total = 0;     // full grid
  std::uint64_t cells_in_shard = 0;  // this shard's share
  std::uint64_t checkpoint_hits = 0; // skipped: already in the checkpoint
  std::uint64_t cells_run = 0;       // freshly executed
  std::size_t checkpoint_lines_skipped = 0;  // torn/corrupt lines ignored
};

/// Runs (or resumes) one sweep.  Throws std::invalid_argument for an
/// unknown experiment or an empty grid.
SweepReport run_sweep(const GridSpec& grid, const SweepOptions& options);

}  // namespace recover::sweep
