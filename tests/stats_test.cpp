#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/quantile.hpp"
#include "src/stats/regression.hpp"
#include "src/stats/summary.hpp"

namespace recover::stats {
namespace {

TEST(Summary, MeanVarianceMinMax) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, MergeEqualsConcatenation) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Summary b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-4);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-4);
}

TEST(StudentT, MatchesTableAt95) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-2);
  EXPECT_NEAR(student_t_critical(5, 0.95), 2.571, 1e-2);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.042, 0.02);
  EXPECT_NEAR(student_t_critical(1000, 0.95), 1.96, 0.01);
}

TEST(Summary, CiShrinksWithSamples) {
  rng::Xoshiro256PlusPlus eng(5);
  Summary small, big;
  for (int i = 0; i < 10; ++i) small.add(rng::uniform_real(eng));
  for (int i = 0; i < 1000; ++i) big.add(rng::uniform_real(eng));
  EXPECT_GT(small.ci_halfwidth(), big.ci_halfwidth());
}

TEST(ChiSquare, CriticalValueSanity) {
  // chi2 with k dof has mean k; the 0.1% critical point is well above.
  EXPECT_GT(chi_square_critical(10, 0.001), 10.0);
  EXPECT_LT(chi_square_critical(10, 0.5), chi_square_critical(10, 0.001));
  EXPECT_NEAR(chi_square_critical(9, 0.05), 16.92, 0.5);
}

TEST(ChiSquare, PvalueMatchesTableValues) {
  // P(X²_1 >= 3.841) ≈ 0.05, P(X²_9 >= 16.92) ≈ 0.05,
  // P(X²_10 >= 18.31) ≈ 0.05, P(X²_1 >= 6.635) ≈ 0.01.
  EXPECT_NEAR(chi_square_pvalue(3.841, 1), 0.05, 2e-3);
  EXPECT_NEAR(chi_square_pvalue(16.92, 9), 0.05, 2e-3);
  EXPECT_NEAR(chi_square_pvalue(18.31, 10), 0.05, 2e-3);
  EXPECT_NEAR(chi_square_pvalue(6.635, 1), 0.01, 5e-4);
}

TEST(ChiSquare, PvalueEdgesAndMonotonicity) {
  EXPECT_DOUBLE_EQ(chi_square_pvalue(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(chi_square_pvalue(-1.0, 5), 1.0);
  double prev = 1.0;
  for (double stat = 0.5; stat < 60.0; stat += 0.5) {
    const double p = chi_square_pvalue(stat, 7);
    EXPECT_LT(p, prev);
    prev = p;
  }
  // Deep tail stays finite and positive (no underflow to garbage).
  const double deep = chi_square_pvalue(300.0, 4);
  EXPECT_GT(deep, 0.0);
  EXPECT_LT(deep, 1e-50);
}

TEST(ChiSquare, PvalueRoundTripsCriticalValue) {
  // chi_square_critical is Wilson–Hilferty (a few % accurate); inverting
  // through the exact p-value should land near the requested tail.
  for (const int df : {2, 5, 9, 20}) {
    for (const double tail : {0.1, 0.01, 0.001}) {
      const double crit = chi_square_critical(df, tail);
      EXPECT_NEAR(chi_square_pvalue(crit, df), tail, tail * 0.25);
    }
  }
}

TEST(ChiSquare, GofPvalueFairDie) {
  // 600 rolls of a fair die, perfectly uniform counts → statistic 0 → p 1.
  const std::vector<std::int64_t> uniform(6, 100);
  const std::vector<double> fair(6, 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(chi_square_gof_pvalue(uniform, fair), 1.0);
  // A heavily loaded die must be rejected at any sane alpha.
  const std::vector<std::int64_t> loaded = {300, 60, 60, 60, 60, 60};
  EXPECT_LT(chi_square_gof_pvalue(loaded, fair), 1e-12);
}

TEST(ChiSquare, GofPvalueUniformUnderNull) {
  // Sampling from the hypothesized law should rarely give tiny p-values.
  rng::Xoshiro256PlusPlus eng(13);
  const std::vector<double> probs = {0.5, 0.25, 0.125, 0.125};
  int tiny = 0;
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<std::int64_t> counts(probs.size(), 0);
    for (int i = 0; i < 2000; ++i) {
      double u = rng::uniform_real(eng);
      std::size_t j = 0;
      while (j + 1 < probs.size() && u >= probs[j]) u -= probs[j++];
      ++counts[j];
    }
    if (chi_square_gof_pvalue(counts, probs) < 1e-4) ++tiny;
  }
  EXPECT_LE(tiny, 1);
}

TEST(IntHistogram, CountsAndQuantiles) {
  IntHistogram h;
  h.add(1, 3);
  h.add(5, 1);
  h.add(2, 6);
  EXPECT_EQ(h.total(), 10);
  EXPECT_EQ(h.count(2), 6);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_NEAR(h.mean(), (3 * 1 + 6 * 2 + 5) / 10.0, 1e-12);
  EXPECT_EQ(h.quantile(0.0), 1);
  EXPECT_EQ(h.quantile(0.3), 1);
  EXPECT_EQ(h.quantile(0.9), 2);
  EXPECT_EQ(h.quantile(1.0), 5);
}

TEST(TvDistance, IdenticalIsZeroDisjointIsOne) {
  IntHistogram a, b, c;
  a.add(1, 5);
  b.add(1, 10);
  c.add(2, 4);
  EXPECT_DOUBLE_EQ(tv_distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(tv_distance(a, c), 1.0);
}

TEST(TvDistance, HalfL1OnVectors) {
  const std::vector<double> p = {0.5, 0.5, 0.0};
  const std::vector<double> q = {0.25, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(tv_distance(p, q), 0.5);
}

TEST(TvDistance, CountsAgainstExactPmf) {
  // 60 draws split 30/20/10 vs pmf (1/2, 1/3, 1/6):
  // ½ (|1/2−1/2| + |1/3−1/3| + |1/6−1/6|) = 0.
  const std::vector<std::int64_t> counts = {30, 20, 10};
  const std::vector<double> probs = {0.5, 1.0 / 3.0, 1.0 / 6.0};
  EXPECT_NEAR(tv_distance(counts, probs), 0.0, 1e-12);
  // All mass on the wrong bucket → TV = expected mass elsewhere.
  const std::vector<std::int64_t> skew = {0, 0, 10};
  EXPECT_NEAR(tv_distance(skew, probs), 5.0 / 6.0, 1e-12);
}

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  std::vector<double> x, y;
  for (double v = 8; v <= 1024; v *= 2) {
    x.push_back(v);
    y.push_back(3.5 * std::pow(v, 1.75));
  }
  const LinearFit fit = loglog_fit(x, y);
  EXPECT_NEAR(fit.slope, 1.75, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.5, 1e-6);
}

TEST(RatioDispersion, ZeroWhenProportional) {
  const std::vector<double> y = {2, 4, 8};
  const std::vector<double> f = {1, 2, 4};
  EXPECT_NEAR(ratio_dispersion(y, f), 0.0, 1e-12);
  const std::vector<double> g = {1, 1, 1};
  EXPECT_GT(ratio_dispersion(y, g), 0.5);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.add(5);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
  q.add(1);
  q.add(9);
  // Median of {1,5,9} is 5.
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
}

TEST(P2Quantile, ApproximatesUniformQuantiles) {
  rng::Xoshiro256PlusPlus eng(77);
  P2Quantile q50(0.5), q95(0.95);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng::uniform_real(eng);
    q50.add(x);
    q95.add(x);
  }
  EXPECT_NEAR(q50.value(), 0.5, 0.02);
  EXPECT_NEAR(q95.value(), 0.95, 0.02);
}

class P2SweepTest : public ::testing::TestWithParam<double> {};

TEST_P(P2SweepTest, TracksNormalQuantile) {
  const double q = GetParam();
  rng::Xoshiro256PlusPlus eng(101);
  P2Quantile est(q);
  for (int i = 0; i < 80000; ++i) {
    // Box-Muller-free normal via sum of uniforms (Irwin–Hall, k = 12).
    double s = 0;
    for (int k = 0; k < 12; ++k) s += rng::uniform_real(eng);
    est.add(s - 6.0);
  }
  EXPECT_NEAR(est.value(), normal_quantile(q), 0.08);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2SweepTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace recover::stats
