// Generalized removal policies (§7 Conclusions: "our techniques can be
// also applied to processes in which we remove a ball according to other
// probability distributions").
//
// A RemovalPolicy consumes a fixed number of shared uniform quantiles
// and maps them to the sorted bin index whose ball is removed.  Exposing
// the quantiles makes every policy grand-couplable for free: the
// coupling draws ONE quantile tuple per step and feeds it to both copies
// (identical copies then remove identically, so merged chains stay
// merged).  The two policies of the paper are included as the base
// cases, plus two natural extensions:
//
//   BallWeightedRemoval      𝒜(v) of Def. 3.2 (scenario A)
//   NonEmptyUniformRemoval   ℬ(v) of Def. 3.3 (scenario B)
//   MaxOfDNonEmptyRemoval    remove from the FULLEST of d random
//                            non-empty bins ("power of d choices" on the
//                            departure side — an active rebalancer)
//   HeaviestBinRemoval       always remove from a maximally loaded bin
//                            (the deterministic greedy repair limit)
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/balls/coupling_common.hpp"
#include "src/balls/load_vector.hpp"
#include "src/rng/distributions.hpp"
#include "src/util/assert.hpp"

namespace recover::balls {

namespace detail {

inline std::size_t quantile_to_nonempty_index(const LoadVector& v, double q) {
  const std::size_t s = v.nonempty_count();
  RL_DBG_ASSERT(s > 0);
  auto i = static_cast<std::size_t>(q * static_cast<double>(s));
  return std::min(i, s - 1);
}

}  // namespace detail

/// Scenario A removal: bin i with probability v_i / m.
class BallWeightedRemoval {
 public:
  [[nodiscard]] static constexpr int quantile_count() { return 1; }

  [[nodiscard]] std::size_t pick_quantiles(const LoadVector& v,
                                           const double* q) const {
    RL_DBG_ASSERT(v.balls() > 0);
    auto rank =
        static_cast<std::int64_t>(q[0] * static_cast<double>(v.balls()));
    rank = std::min(rank, v.balls() - 1);
    return v.ball_at_quantile(rank);
  }
};

/// Scenario B removal: uniform over non-empty bins.
class NonEmptyUniformRemoval {
 public:
  [[nodiscard]] static constexpr int quantile_count() { return 1; }

  [[nodiscard]] std::size_t pick_quantiles(const LoadVector& v,
                                           const double* q) const {
    return detail::quantile_to_nonempty_index(v, q[0]);
  }
};

/// Remove from the fullest of d uniformly sampled non-empty bins —
/// under the sorted representation, the SMALLEST of d sampled indices.
template <int D>
class MaxOfDNonEmptyRemoval {
 public:
  static_assert(D >= 1);

  [[nodiscard]] static constexpr int quantile_count() { return D; }

  [[nodiscard]] std::size_t pick_quantiles(const LoadVector& v,
                                           const double* q) const {
    std::size_t best = detail::quantile_to_nonempty_index(v, q[0]);
    for (int k = 1; k < D; ++k) {
      best = std::min(best, detail::quantile_to_nonempty_index(v, q[k]));
    }
    return best;
  }
};

/// Deterministic greedy repair: always drain a maximally loaded bin.
class HeaviestBinRemoval {
 public:
  [[nodiscard]] static constexpr int quantile_count() { return 0; }

  [[nodiscard]] std::size_t pick_quantiles(const LoadVector& v,
                                           const double* /*q*/) const {
    RL_DBG_ASSERT(v.balls() > 0);
    (void)v;
    return 0;  // sorted index 0 holds a maximum-load bin
  }
};

/// Draws the policy's quantile tuple and removes one ball.
template <typename Removal, typename Engine>
std::size_t remove_with_policy(const Removal& removal, LoadVector& v,
                               Engine& eng) {
  double q[std::max(Removal::quantile_count(), 1)];
  for (int k = 0; k < Removal::quantile_count(); ++k) {
    q[k] = rng::uniform_real(eng);
  }
  const std::size_t i = removal.pick_quantiles(v, q);
  return v.remove_at(i);
}

/// Dynamic allocation chain with arbitrary removal policy + placement
/// rule (scenarios A and B are the two base instantiations).
template <typename Removal, typename Rule>
class GeneralChain {
 public:
  using State = LoadVector;

  GeneralChain(LoadVector init, Removal removal, Rule rule)
      : state_(std::move(init)),
        removal_(std::move(removal)),
        rule_(std::move(rule)) {
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const LoadVector& state() const { return state_; }
  [[nodiscard]] std::size_t bins() const { return state_.bins(); }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }

  template <typename Engine>
  void step(Engine& eng) {
    remove_with_policy(removal_, state_, eng);
    ProbeFresh<Engine> probe(eng, state_.bins());
    state_.add_at(rule_.place_index(state_, probe));
  }

 private:
  LoadVector state_;
  Removal removal_;
  Rule rule_;
};

/// Grand coupling of two GeneralChain copies: one quantile tuple and one
/// probe sequence per step, shared between the copies.
template <typename Removal, typename Rule>
class GeneralGrandCoupling {
 public:
  GeneralGrandCoupling(LoadVector x, LoadVector y, Removal removal, Rule rule)
      : x_(std::move(x)),
        y_(std::move(y)),
        removal_(std::move(removal)),
        rule_(std::move(rule)) {
    RL_REQUIRE(x_.bins() == y_.bins());
    RL_REQUIRE(x_.balls() == y_.balls());
    RL_REQUIRE(x_.balls() > 0);
  }

  template <typename Engine>
  void step(Engine& eng) {
    double q[std::max(Removal::quantile_count(), 1)];
    for (int k = 0; k < Removal::quantile_count(); ++k) {
      q[k] = rng::uniform_real(eng);
    }
    x_.remove_at(removal_.pick_quantiles(x_, q));
    y_.remove_at(removal_.pick_quantiles(y_, q));
    coupled_place(rule_, x_, y_, eng);
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.distance(y_); }
  [[nodiscard]] const LoadVector& first() const { return x_; }
  [[nodiscard]] const LoadVector& second() const { return y_; }

 private:
  LoadVector x_;
  LoadVector y_;
  Removal removal_;
  Rule rule_;
};

}  // namespace recover::balls
