// Dynamic resource allocation demo (§1.1 of the paper).
//
// n identical servers run n jobs.  Each tick one job finishes and a new
// one is submitted; the dispatcher samples d servers and sends the job
// to the least loaded ("power of two choices").  This example compares
// dispatch policies on the two finish models the paper analyzes —
// scenario A (a random JOB terminates) and scenario B (a random SERVER
// finishes a job) — reporting the stationary load profile and the time
// to re-balance after a simulated rack failure dumps every job on one
// server.
//
//   ./load_balancer_sim --n 512 --model A
#include <cstdio>
#include <iostream>
#include <string>

#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/core/recovery.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

template <typename Chain>
void run_policy(const char* name, Chain chain, std::int64_t horizon,
                std::uint64_t seed, recover::util::Table& table) {
  using namespace recover;
  rng::Xoshiro256PlusPlus eng(seed);
  // Stationary profile.
  for (std::int64_t t = 0; t < horizon; ++t) chain.step(eng);
  stats::IntHistogram max_load;
  for (int s = 0; s < 200; ++s) {
    for (int t = 0; t < 50; ++t) chain.step(eng);
    max_load.add(chain.state().max_load());
  }
  // Crash: dump all jobs on one server and watch the rebalance back into
  // this policy's own typical band (its stationary p95).
  const std::int64_t band = max_load.quantile(0.95);
  const auto n = chain.state().bins();
  const auto m = chain.state().balls();
  chain.set_state(balls::LoadVector::all_in_one(n, m));
  std::int64_t recovered_at = -1;
  std::int64_t window = 0;
  for (std::int64_t t = 1; t <= 50 * horizon; ++t) {
    chain.step(eng);
    if (chain.state().max_load() <= band) {
      if (++window >= 32) {
        recovered_at = t - window + 1;
        break;
      }
    } else {
      window = 0;
    }
  }
  table.row()
      .add(name)
      .num(max_load.mean(), 2)
      .integer(max_load.quantile(0.95))
      .integer(recovered_at);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("load_balancer_sim",
                "dispatch-policy comparison for a dynamic server farm");
  cli.flag("n", "number of servers (= number of jobs)", "512");
  cli.flag("model", "finish model: A (job terminates) or B (server "
                    "finishes)", "A");
  cli.flag("seed", "rng seed", "1");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto m = static_cast<std::int64_t>(n);
  const bool model_b = cli.str("model") == "B" || cli.str("model") == "b";
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const std::int64_t horizon = 50 * m;

  fluid::FluidModel fm(model_b ? fluid::Scenario::kB : fluid::Scenario::kA, 2,
                       1.0, 24);
  const auto typical = fluid::FluidModel::predicted_max_load(
      fm.fixed_point(), static_cast<double>(n));

  std::printf("model: scenario %s, n = m = %zu, typical max load ~ %lld\n\n",
              model_b ? "B (random server finishes a job)"
                      : "A (random job terminates)",
              n, static_cast<long long>(typical));

  util::Table table({"dispatch policy", "E[max load]", "p95 max load",
                     "rebalance steps after crash"});

  const auto start = balls::LoadVector::balanced(n, m);
  if (model_b) {
    run_policy("random server (d=1)",
               balls::ScenarioBChain<balls::AbkuRule>(start,
                                                      balls::AbkuRule(1)),
               horizon, seed, table);
    run_policy("best of 2 (d=2)",
               balls::ScenarioBChain<balls::AbkuRule>(start,
                                                      balls::AbkuRule(2)),
               horizon, seed + 1, table);
    run_policy("adaptive probing ADAP",
               balls::ScenarioBChain<balls::AdapRule>(
                   start,
                   balls::AdapRule{balls::ThresholdSchedule::linear(1, 1, 4)}),
               horizon, seed + 2, table);
  } else {
    run_policy("random server (d=1)",
               balls::ScenarioAChain<balls::AbkuRule>(start,
                                                      balls::AbkuRule(1)),
               horizon, seed, table);
    run_policy("best of 2 (d=2)",
               balls::ScenarioAChain<balls::AbkuRule>(start,
                                                      balls::AbkuRule(2)),
               horizon, seed + 1, table);
    run_policy("adaptive probing ADAP",
               balls::ScenarioAChain<balls::AdapRule>(
                   start,
                   balls::AdapRule{balls::ThresholdSchedule::linear(1, 1, 4)}),
               horizon, seed + 2, table);
  }
  table.print(std::cout);
  std::printf(
      "\nTwo choices collapse the max load (Azar et al.) and the paper's "
      "recovery bounds say the rebalance column scales as ~n ln n under "
      "model A and ~n^2 ln n under model B.\n");
  return 0;
}
