// Coupling From The Past (Propp–Wilson) on top of the grand couplings.
//
// The normalized state space Ω_m is bounded in the majorization order:
// the balanced vector is the unique minimum and the all-in-one crash
// vector the unique maximum, so EVERY state is sandwiched between the
// two.  Running the shared-randomness grand coupling from (top, bottom)
// backwards in time — with the randomness of step −t fixed once and for
// all by a per-t stream seed — yields, on coalescence by time 0, a
// sample whose law is EXACTLY the stationary distribution, provided the
// one-step random map is monotone w.r.t. majorization.
//
// We do not prove monotonicity; instead the test suite (a) checks the
// sandwich property empirically on random triples under the actual
// random maps, and (b) compares the CFTP output distribution against the
// exactly computed π on small partition spaces (TV at the sampling-noise
// floor).  exp18 repeats (b) as a table and then uses CFTP to draw
// perfect stationary max-load samples at sizes where the matrix no
// longer fits.
#pragma once

#include <cstdint>
#include <optional>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/rng/engines.hpp"
#include "src/util/assert.hpp"

namespace recover::core {

struct CftpOptions {
  std::uint64_t seed = 1;
  /// Doubling cap: the backward window grows 1, 2, 4, …, max_window.
  std::int64_t max_window = 1'000'000'000;
};

/// One exact sample.  `make_coupling()` must return a fresh grand
/// coupling whose two copies start at the order-maximum and
/// order-minimum states; its step(Engine&) must be a deterministic
/// function of the engine's output (true for all recoverlib couplings).
/// Returns the common state, or nullopt if max_window was exhausted.
template <typename MakeCoupling>
auto cftp_sample(MakeCoupling&& make_coupling, const CftpOptions& options)
    -> std::optional<std::decay_t<
        decltype(std::declval<
                     std::invoke_result_t<MakeCoupling>>().first())>> {
  RL_REQUIRE(options.max_window >= 1);
  static obs::Counter& samples_drawn =
      obs::Registry::global().counter("cftp.samples");
  static obs::Counter& samples_exhausted =
      obs::Registry::global().counter("cftp.exhausted");
  static obs::Counter& steps_total =
      obs::Registry::global().counter("cftp.steps");
  static obs::Histogram& window_hist =
      obs::Registry::global().histogram("cftp.window");
  static obs::Histogram& sample_ns =
      obs::Registry::global().histogram("cftp.sample_ns");
  obs::ScopedSpan span(sample_ns);
  for (std::int64_t window = 1; window <= options.max_window; window *= 2) {
    // One trace span per doubling round, annotated with the backward
    // window, so a timeline shows exactly which doubling dominates.
    obs::TraceSpan round_span("cftp.round", "window", window);
    auto coupling = make_coupling();
    // Steps run from time −window to −1; the randomness of time −t is a
    // pure function of (seed, t), so growing the window PREPENDS new
    // randomness while the suffix near time 0 is replayed identically —
    // the invariant CFTP's correctness rests on.
    for (std::int64_t t = window; t >= 1; --t) {
      rng::Xoshiro256PlusPlus eng(rng::derive_stream_seed(
          options.seed, static_cast<std::uint64_t>(t)));
      coupling.step(eng);
    }
    steps_total.add(static_cast<std::uint64_t>(window));
    if (coupling.coalesced()) {
      samples_drawn.add();
      window_hist.record(static_cast<std::uint64_t>(window));
      return coupling.first();
    }
    if (window > options.max_window / 2) break;  // avoid overflow
  }
  samples_exhausted.add();
  return std::nullopt;
}

}  // namespace recover::core
