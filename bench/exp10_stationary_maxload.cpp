// Experiment E10 — the typical state the recovery bounds converge to:
// stationary max load of the dynamic ABKU[d] processes (Azar et al. /
// Mitzenmacher results the paper leans on).
//
// Claims reproduced: for m = n, after burn-in the max load is
// ln ln n / ln d + O(1) for d ≥ 2 in both scenarios, versus
// Θ(ln n / ln ln n) for d = 1; the fluid model's fixed-point prediction
// should agree with the simulated value within O(1).
//
// The per-point body is the registered "exp10" SweepCell (src/sweep/),
// shared with bench/sweep_runner.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/sweep/registry.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp10_stationary_maxload",
                "E10: stationary max load vs lnln(n)/ln(d) and fluid model");
  cli.flag("sizes", "comma-separated n = m sweep", "64,256,1024,4096");
  cli.flag("ds", "comma-separated d values", "1,2,3");
  cli.flag("samples", "stationary samples per point", "300");
  cli.flag("seed", "rng seed", "10");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  sweep::GridSpec grid;
  grid.add_axis("d", cli.int_list("ds"));
  grid.add_axis("n", cli.int_list("sizes"));
  grid.add_axis("samples", {cli.integer("samples")});
  const auto* exp = sweep::Registry::global().find("exp10");

  util::Table table({"d", "n=m", "maxload_A", "maxload_B", "fluid_A",
                     "fluid_B", "ln(n)/lnln(n)", "lnln(n)/ln(d)",
                     "ESS_A"});

  for (std::uint64_t index = 0; index < grid.cells(); ++index) {
    const auto cell = grid.cell(index);
    sweep::CellContext ctx;
    ctx.seed = rng::substream(seed, index);
    ctx.parallel_within_cell = true;
    const auto result = exp->run(cell, ctx);
    table.row()
        .integer(cell.at("d"))
        .integer(cell.at("n"))
        .num(result.at("maxload_A"), 2)
        .num(result.at("maxload_B"), 2)
        .integer(static_cast<std::int64_t>(result.at("fluid_A")))
        .integer(static_cast<std::int64_t>(result.at("fluid_B")))
        .num(result.at("law_one_choice"), 2)
        .num(result.at("law_d_choice"), 2)
        .num(result.at("ess_A"), 0);
  }
  table.print(std::cout);
  run.add_table("stationary_maxload", table);
  std::printf(
      "\n# Shape: d=1 max load grows ~ln n/lnln n; d>=2 stays within O(1) "
      "of lnln n/ln d (near-flat in n) and the fluid column tracks the "
      "simulation within ~1 level.\n");
  return 0;
}
