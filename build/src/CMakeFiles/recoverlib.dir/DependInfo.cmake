
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/balls/coupling_a.cpp" "src/CMakeFiles/recoverlib.dir/balls/coupling_a.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/balls/coupling_a.cpp.o.d"
  "/root/repo/src/balls/exact_chain.cpp" "src/CMakeFiles/recoverlib.dir/balls/exact_chain.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/balls/exact_chain.cpp.o.d"
  "/root/repo/src/balls/exact_coupling_analysis.cpp" "src/CMakeFiles/recoverlib.dir/balls/exact_coupling_analysis.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/balls/exact_coupling_analysis.cpp.o.d"
  "/root/repo/src/balls/load_vector.cpp" "src/CMakeFiles/recoverlib.dir/balls/load_vector.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/balls/load_vector.cpp.o.d"
  "/root/repo/src/balls/rules.cpp" "src/CMakeFiles/recoverlib.dir/balls/rules.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/balls/rules.cpp.o.d"
  "/root/repo/src/balls/scenario_a.cpp" "src/CMakeFiles/recoverlib.dir/balls/scenario_a.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/balls/scenario_a.cpp.o.d"
  "/root/repo/src/balls/scenario_b.cpp" "src/CMakeFiles/recoverlib.dir/balls/scenario_b.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/balls/scenario_b.cpp.o.d"
  "/root/repo/src/balls/static_alloc.cpp" "src/CMakeFiles/recoverlib.dir/balls/static_alloc.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/balls/static_alloc.cpp.o.d"
  "/root/repo/src/core/coalescence.cpp" "src/CMakeFiles/recoverlib.dir/core/coalescence.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/core/coalescence.cpp.o.d"
  "/root/repo/src/core/exact_mixing.cpp" "src/CMakeFiles/recoverlib.dir/core/exact_mixing.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/core/exact_mixing.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/CMakeFiles/recoverlib.dir/core/recovery.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/core/recovery.cpp.o.d"
  "/root/repo/src/core/tv_mixing.cpp" "src/CMakeFiles/recoverlib.dir/core/tv_mixing.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/core/tv_mixing.cpp.o.d"
  "/root/repo/src/fluid/fluid_limit.cpp" "src/CMakeFiles/recoverlib.dir/fluid/fluid_limit.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/fluid/fluid_limit.cpp.o.d"
  "/root/repo/src/fluid/ode.cpp" "src/CMakeFiles/recoverlib.dir/fluid/ode.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/fluid/ode.cpp.o.d"
  "/root/repo/src/orient/coupling.cpp" "src/CMakeFiles/recoverlib.dir/orient/coupling.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/orient/coupling.cpp.o.d"
  "/root/repo/src/orient/exact_chain.cpp" "src/CMakeFiles/recoverlib.dir/orient/exact_chain.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/orient/exact_chain.cpp.o.d"
  "/root/repo/src/orient/greedy_graph.cpp" "src/CMakeFiles/recoverlib.dir/orient/greedy_graph.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/orient/greedy_graph.cpp.o.d"
  "/root/repo/src/orient/state.cpp" "src/CMakeFiles/recoverlib.dir/orient/state.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/orient/state.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/recoverlib.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/rng/alias.cpp" "src/CMakeFiles/recoverlib.dir/rng/alias.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/rng/alias.cpp.o.d"
  "/root/repo/src/rng/engines.cpp" "src/CMakeFiles/recoverlib.dir/rng/engines.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/rng/engines.cpp.o.d"
  "/root/repo/src/rng/fenwick.cpp" "src/CMakeFiles/recoverlib.dir/rng/fenwick.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/rng/fenwick.cpp.o.d"
  "/root/repo/src/stats/autocorr.cpp" "src/CMakeFiles/recoverlib.dir/stats/autocorr.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/stats/autocorr.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/CMakeFiles/recoverlib.dir/stats/bootstrap.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/stats/bootstrap.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/recoverlib.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/CMakeFiles/recoverlib.dir/stats/quantile.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/stats/quantile.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/CMakeFiles/recoverlib.dir/stats/regression.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/stats/regression.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/recoverlib.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/stats/summary.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/recoverlib.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/sparkline.cpp" "src/CMakeFiles/recoverlib.dir/util/sparkline.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/util/sparkline.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/recoverlib.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/recoverlib.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
