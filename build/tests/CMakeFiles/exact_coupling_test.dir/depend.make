# Empty dependencies file for exact_coupling_test.
# This may be replaced when dependencies are built.
