// Tests for the percentile bootstrap.
#include <gtest/gtest.h>

#include <cmath>

#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/bootstrap.hpp"

namespace recover::stats {
namespace {

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const std::vector<double> sample(20, 3.5);
  const auto ci = bootstrap_mean(sample);
  EXPECT_DOUBLE_EQ(ci.point, 3.5);
  EXPECT_DOUBLE_EQ(ci.lo, 3.5);
  EXPECT_DOUBLE_EQ(ci.hi, 3.5);
}

TEST(Bootstrap, IntervalBracketsPointEstimate) {
  rng::Xoshiro256PlusPlus eng(5);
  std::vector<double> sample;
  for (int i = 0; i < 60; ++i) sample.push_back(rng::uniform_real(eng) * 10);
  const auto ci = bootstrap_mean(sample);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_GT(ci.hi - ci.lo, 0.0);
}

TEST(Bootstrap, CoversTrueMeanMostOfTheTime) {
  // 40 repetitions of a 30-sample uniform[0,1) mean: the 95% interval
  // should contain 0.5 at least ~85% of the time (generous threshold).
  rng::Xoshiro256PlusPlus eng(7);
  int covered = 0;
  constexpr int kReps = 40;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<double> sample;
    for (int i = 0; i < 30; ++i) sample.push_back(rng::uniform_real(eng));
    const auto ci = bootstrap_mean(sample, 1000, 0.95,
                                   static_cast<std::uint64_t>(rep) + 1);
    if (ci.lo <= 0.5 && 0.5 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, 34);
}

TEST(Bootstrap, WiderLevelGivesWiderInterval) {
  rng::Xoshiro256PlusPlus eng(9);
  std::vector<double> sample;
  for (int i = 0; i < 50; ++i) sample.push_back(rng::uniform_real(eng));
  const auto ci90 = bootstrap_mean(sample, 2000, 0.90, 3);
  const auto ci99 = bootstrap_mean(sample, 2000, 0.99, 3);
  EXPECT_LE(ci99.lo, ci90.lo);
  EXPECT_GE(ci99.hi, ci90.hi);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> sample = {1, 2, 3, 4, 100};
  const auto ci = bootstrap_interval(
      sample,
      [](const std::vector<double>& xs) {
        double mx = xs[0];
        for (const double x : xs) mx = std::max(mx, x);
        return mx;
      },
      500, 0.95, 11);
  EXPECT_DOUBLE_EQ(ci.point, 100.0);
  EXPECT_LE(ci.hi, 100.0);
}

TEST(Bootstrap, MeanRatioNearTruth) {
  rng::Xoshiro256PlusPlus eng(13);
  std::vector<double> a, b;
  for (int i = 0; i < 80; ++i) {
    const double x = 1.0 + rng::uniform_real(eng);
    b.push_back(x);
    a.push_back(2.0 * x + 0.1 * rng::uniform_real(eng));
  }
  const auto ci = bootstrap_mean_ratio(a, b);
  EXPECT_NEAR(ci.point, 2.0, 0.1);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  rng::Xoshiro256PlusPlus eng(15);
  std::vector<double> sample;
  for (int i = 0; i < 25; ++i) sample.push_back(rng::uniform_real(eng));
  const auto c1 = bootstrap_mean(sample, 500, 0.95, 42);
  const auto c2 = bootstrap_mean(sample, 500, 0.95, 42);
  EXPECT_DOUBLE_EQ(c1.lo, c2.lo);
  EXPECT_DOUBLE_EQ(c1.hi, c2.hi);
}

}  // namespace
}  // namespace recover::stats
