#include "src/rng/engines.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define RECOVERLIB_PHILOX_SIMD 1
#include <immintrin.h>
#endif

#include "src/obs/metrics.hpp"

namespace recover::rng {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// Draw counters, registered at load time (no function-local static
// guard on the flush path).  Engines accumulate draws in a private
// member and flush every kDrawFlush draws / on destruction, so the
// per-draw cost is an increment on the engine's own cache line — no
// global load at all.  Per-draw granularity is what makes replica cost
// differences between rules/schedules visible in run records.
obs::Counter& g_xoshiro_draws =
    obs::Registry::global().counter("rng.xoshiro.draws");
obs::Counter& g_philox_draws =
    obs::Registry::global().counter("rng.philox.draws");
obs::Counter& g_philox_blocks =
    obs::Registry::global().counter("rng.philox.blocks");
obs::Counter& g_stream_seeds =
    obs::Registry::global().counter("rng.stream_seeds");

// Flushes a block of `count` draws through an engine's pending counter,
// preserving the exact totals of per-call accounting: whole kDrawFlush
// multiples reached within the block go to the global counter now, the
// remainder stays pending (for the next flush or the destructor).
// Returns the amount flushed.
inline std::uint64_t flush_block_draws(std::uint64_t& pending,
                                       std::uint64_t count,
                                       obs::Counter& sink) {
  const std::uint64_t before = pending & (detail::kDrawFlush - 1);
  pending += count;
  const std::uint64_t flushed =
      ((before + count) / detail::kDrawFlush) * detail::kDrawFlush;
  if (flushed != 0) sink.add(flushed);
  return flushed;
}

}  // namespace

Xoshiro256PlusPlus::Xoshiro256PlusPlus(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm();
}

Xoshiro256PlusPlus::~Xoshiro256PlusPlus() {
  g_xoshiro_draws.add(pending_draws_ & (detail::kDrawFlush - 1));
}

Xoshiro256PlusPlus::result_type Xoshiro256PlusPlus::operator()() {
  // Draw accounting stays on the engine's own cache line: a member
  // increment plus a never-taken branch, flushed to the global counter
  // every kDrawFlush draws and on destruction.
  if ((++pending_draws_ & (detail::kDrawFlush - 1)) == 0) {
    g_xoshiro_draws.add(detail::kDrawFlush);
  }
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256PlusPlus::fill(std::uint64_t* out, std::size_t count) {
  // The whole point of the block API: state stays in registers across
  // the loop instead of round-tripping through memory once per draw.
  std::uint64_t s0 = s_[0];
  std::uint64_t s1 = s_[1];
  std::uint64_t s2 = s_[2];
  std::uint64_t s3 = s_[3];
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = rotl(s0 + s3, 23) + s0;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
  }
  s_ = {s0, s1, s2, s3};
  flush_block_draws(pending_draws_, count, g_xoshiro_draws);
}

void Xoshiro256PlusPlus::account_draws(std::uint64_t count) {
  flush_block_draws(pending_draws_, count, g_xoshiro_draws);
}

void Xoshiro256PlusPlus::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;

inline void philox_round(std::array<std::uint32_t, 4>& ctr, std::uint32_t k0,
                         std::uint32_t k1) {
  const std::uint64_t p0 = std::uint64_t{kPhiloxM0} * ctr[0];
  const std::uint64_t p1 = std::uint64_t{kPhiloxM1} * ctr[2];
  const auto hi0 = static_cast<std::uint32_t>(p0 >> 32);
  const auto lo0 = static_cast<std::uint32_t>(p0);
  const auto hi1 = static_cast<std::uint32_t>(p1 >> 32);
  const auto lo1 = static_cast<std::uint32_t>(p1);
  ctr = {hi1 ^ ctr[1] ^ k0, lo1, hi0 ^ ctr[3] ^ k1, lo0};
}

#if RECOVERLIB_PHILOX_SIMD

// Four Philox blocks at once.  Unlike xoshiro, the counter-based design
// has no serial recurrence: blocks for counters c, c+1, c+2, c+3 are
// independent pure functions, so computing them in the four 64-bit lanes
// of a ymm register yields bit-for-bit the words the scalar block() loop
// produces, four blocks per ~10 vpmuludq pairs instead of per 20 scalar
// muls.  Each lane holds one 32-bit Philox word in its low half (high
// half stays zero: vpmuludq reads the low 32 bits, vpaddd wraps each
// 32-bit lane like the scalar key schedule).
//
// Stores one 4-block stream's final state as eight output words.  Per
// block b: out words (b1<<32)|b0 then (b3<<32)|b2, blocks in counter
// order — interleave the two word vectors lane-wise.
__attribute__((target("avx2"))) inline void philox_pack_store_avx2(
    std::uint64_t* dst, __m256i x0, __m256i x1, __m256i x2, __m256i x3) {
  const __m256i wa = _mm256_or_si256(_mm256_slli_epi64(x1, 32), x0);
  const __m256i wb = _mm256_or_si256(_mm256_slli_epi64(x3, 32), x2);
  const __m256i t0 = _mm256_unpacklo_epi64(wa, wb);  // A0 B0 A2 B2
  const __m256i t1 = _mm256_unpackhi_epi64(wa, wb);  // A1 B1 A3 B3
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_permute2x128_si256(t0, t1, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4),
                      _mm256_permute2x128_si256(t0, t1, 0x31));
}

// Writes `groups * 8` words (two per block, scalar lane order) to `out`;
// counters used are counter, counter+1, ..., counter+4*groups-1.
//
// The 10-round chain of one vector is serial (each round's multiply
// feeds the next), so a single 4-block stream is latency-bound; the loop
// therefore interleaves two independent 4-block streams per iteration,
// which overlaps the two multiply chains and roughly doubles throughput.
// Odd group counts run the last group through stream A with stream B
// masked off by a short tail loop bound.
__attribute__((target("avx2"))) void philox_fill4_avx2(
    std::uint64_t key, std::uint64_t counter_hi, std::uint64_t counter,
    std::uint64_t* out, std::size_t groups) {
  const __m256i m0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM0));
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM1));
  const __m256i w0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxW0));
  const __m256i w1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxW1));
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i key0 =
      _mm256_set1_epi64x(static_cast<long long>(key & 0xFFFFFFFFu));
  const __m256i key1 =
      _mm256_set1_epi64x(static_cast<long long>((key >> 32) & 0xFFFFFFFFu));
  const __m256i chi0 =
      _mm256_set1_epi64x(static_cast<long long>(counter_hi & 0xFFFFFFFFu));
  const __m256i chi1 = _mm256_set1_epi64x(
      static_cast<long long>((counter_hi >> 32) & 0xFFFFFFFFu));
  // Full 64-bit counters for each stream's four blocks, advanced by
  // paddq (which carries across the 32-bit lane boundary the scalar
  // counter split would see).
  const auto ll = [](std::uint64_t v) { return static_cast<long long>(v); };
  __m256i ctra = _mm256_set_epi64x(ll(counter + 3), ll(counter + 2),
                                   ll(counter + 1), ll(counter));
  const __m256i four = _mm256_set1_epi64x(4);
  __m256i ctrb = _mm256_add_epi64(ctra, four);
  const __m256i eight = _mm256_set1_epi64x(8);

  while (groups >= 2) {
    __m256i a0 = _mm256_and_si256(ctra, lo32);
    __m256i a1 = _mm256_srli_epi64(ctra, 32);
    __m256i a2 = chi0;
    __m256i a3 = chi1;
    __m256i b0 = _mm256_and_si256(ctrb, lo32);
    __m256i b1 = _mm256_srli_epi64(ctrb, 32);
    __m256i b2 = chi0;
    __m256i b3 = chi1;
    __m256i k0 = key0;
    __m256i k1 = key1;
    for (int round = 0; round < 10; ++round) {
      const __m256i pa0 = _mm256_mul_epu32(a0, m0);
      const __m256i pa1 = _mm256_mul_epu32(a2, m1);
      const __m256i pb0 = _mm256_mul_epu32(b0, m0);
      const __m256i pb1 = _mm256_mul_epu32(b2, m1);
      a0 = _mm256_xor_si256(_mm256_srli_epi64(pa1, 32),
                            _mm256_xor_si256(a1, k0));
      a2 = _mm256_xor_si256(_mm256_srli_epi64(pa0, 32),
                            _mm256_xor_si256(a3, k1));
      a1 = _mm256_and_si256(pa1, lo32);
      a3 = _mm256_and_si256(pa0, lo32);
      b0 = _mm256_xor_si256(_mm256_srli_epi64(pb1, 32),
                            _mm256_xor_si256(b1, k0));
      b2 = _mm256_xor_si256(_mm256_srli_epi64(pb0, 32),
                            _mm256_xor_si256(b3, k1));
      b1 = _mm256_and_si256(pb1, lo32);
      b3 = _mm256_and_si256(pb0, lo32);
      k0 = _mm256_add_epi32(k0, w0);
      k1 = _mm256_add_epi32(k1, w1);
    }
    philox_pack_store_avx2(out, a0, a1, a2, a3);
    philox_pack_store_avx2(out + 8, b0, b1, b2, b3);
    ctra = _mm256_add_epi64(ctra, eight);
    ctrb = _mm256_add_epi64(ctrb, eight);
    out += 16;
    groups -= 2;
  }
  if (groups == 1) {
    __m256i x0 = _mm256_and_si256(ctra, lo32);
    __m256i x1 = _mm256_srli_epi64(ctra, 32);
    __m256i x2 = chi0;
    __m256i x3 = chi1;
    __m256i k0 = key0;
    __m256i k1 = key1;
    for (int round = 0; round < 10; ++round) {
      const __m256i p0 = _mm256_mul_epu32(x0, m0);
      const __m256i p1 = _mm256_mul_epu32(x2, m1);
      const __m256i n0 = _mm256_xor_si256(_mm256_srli_epi64(p1, 32),
                                          _mm256_xor_si256(x1, k0));
      const __m256i n2 = _mm256_xor_si256(_mm256_srli_epi64(p0, 32),
                                          _mm256_xor_si256(x3, k1));
      x1 = _mm256_and_si256(p1, lo32);
      x3 = _mm256_and_si256(p0, lo32);
      x0 = n0;
      x2 = n2;
      k0 = _mm256_add_epi32(k0, w0);
      k1 = _mm256_add_epi32(k1, w1);
    }
    philox_pack_store_avx2(out, x0, x1, x2, x3);
  }
}

bool philox_simd_available() {
  static const bool avail = __builtin_cpu_supports("avx2") != 0;
  return avail;
}

#endif  // RECOVERLIB_PHILOX_SIMD

}  // namespace

Philox4x32::Philox4x32(std::uint64_t key, std::uint64_t counter_hi)
    : key_(key), counter_hi_(counter_hi) {}

std::array<std::uint32_t, 4> Philox4x32::block(std::uint64_t counter) const {
  std::array<std::uint32_t, 4> ctr = {
      static_cast<std::uint32_t>(counter),
      static_cast<std::uint32_t>(counter >> 32),
      static_cast<std::uint32_t>(counter_hi_),
      static_cast<std::uint32_t>(counter_hi_ >> 32)};
  std::uint32_t k0 = static_cast<std::uint32_t>(key_);
  std::uint32_t k1 = static_cast<std::uint32_t>(key_ >> 32);
  for (int round = 0; round < 10; ++round) {
    philox_round(ctr, k0, k1);
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return ctr;
}

Philox4x32::~Philox4x32() {
  g_philox_draws.add(pending_draws_ & (detail::kDrawFlush - 1));
  g_philox_blocks.add(pending_blocks_);
}

Philox4x32::result_type Philox4x32::operator()() {
  if ((++pending_draws_ & (detail::kDrawFlush - 1)) == 0) {
    g_philox_draws.add(detail::kDrawFlush);
    g_philox_blocks.add(pending_blocks_);
    pending_blocks_ = 0;
  }
  if (buffered_ < 2) {
    ++pending_blocks_;
    buffer_ = block(counter_++);
    buffered_ = 4;
  }
  const std::uint64_t lo = buffer_[static_cast<std::size_t>(4 - buffered_)];
  const std::uint64_t hi = buffer_[static_cast<std::size_t>(5 - buffered_)];
  buffered_ -= 2;
  return (hi << 32) | lo;
}

void Philox4x32::fill(std::uint64_t* out, std::size_t count) {
  std::size_t i = 0;
  // Drain lanes left over from a previous operator() call first, in the
  // exact pairwise order operator() would consume them.
  while (i < count && buffered_ >= 2) {
    const std::uint64_t lo = buffer_[static_cast<std::size_t>(4 - buffered_)];
    const std::uint64_t hi = buffer_[static_cast<std::size_t>(5 - buffered_)];
    buffered_ -= 2;
    out[i++] = (hi << 32) | lo;
  }
  // Whole blocks straight from the counter: two 64-bit outputs per
  // 128-bit block, no buffer round-trip.
  std::uint64_t blocks = 0;
#if RECOVERLIB_PHILOX_SIMD
  if (count - i >= 8 && philox_simd_available()) {
    const std::size_t groups = (count - i) / 8;
    philox_fill4_avx2(key_, counter_hi_, counter_, out + i, groups);
    counter_ += 4 * groups;
    blocks += 4 * groups;
    i += 8 * groups;
  }
#endif
  while (i < count) {
    const auto b = block(counter_++);
    ++blocks;
    out[i++] = (std::uint64_t{b[1]} << 32) | b[0];
    if (i < count) {
      out[i++] = (std::uint64_t{b[3]} << 32) | b[2];
    } else {
      // Odd tail: operator() would have buffered the block and consumed
      // only the first lane pair; leave the second pair for the next draw.
      buffer_ = b;
      buffered_ = 2;
    }
  }
  pending_blocks_ += blocks;
  if (flush_block_draws(pending_draws_, count, g_philox_draws) != 0) {
    g_philox_blocks.add(pending_blocks_);
    pending_blocks_ = 0;
  }
}

std::uint64_t derive_stream_seed(std::uint64_t master_seed, std::uint64_t i) {
  g_stream_seeds.add();
  SplitMix64 sm(master_seed ^ (0xA24BAED4963EE407ULL + i * 0x9FB21C651E98DF25ULL));
  // Burn a few outputs so adjacent i values decorrelate fully.
  (void)sm();
  (void)sm();
  return sm();
}

std::uint64_t substream(std::uint64_t master_seed, std::uint64_t i) {
  g_stream_seeds.add();
  // Mix the master first so it occupies the full 64-bit space before the
  // stream index perturbs it; the golden-gamma multiple keeps adjacent
  // indices maximally far apart in SplitMix64's state sequence.
  SplitMix64 master(master_seed);
  const std::uint64_t mixed = master();
  SplitMix64 child(mixed ^ ((i + 1) * 0x9E3779B97F4A7C15ULL));
  (void)child();
  return child();
}

}  // namespace recover::rng
