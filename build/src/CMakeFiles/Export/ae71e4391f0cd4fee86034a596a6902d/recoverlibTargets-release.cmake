#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "recoverlib::recoverlib" for configuration "Release"
set_property(TARGET recoverlib::recoverlib APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(recoverlib::recoverlib PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librecoverlib.a"
  )

list(APPEND _cmake_import_check_targets recoverlib::recoverlib )
list(APPEND _cmake_import_check_files_for_recoverlib::recoverlib "${_IMPORT_PREFIX}/lib/librecoverlib.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
