// Process-wide metrics registry: named counters, gauges, and log-bucketed
// histograms shared by every estimator and experiment binary.
//
// Design constraints (DESIGN.md-grade invariants):
//  * Near-zero cost when disabled — every record path is a single relaxed
//    atomic load plus a predicted branch, so instrumentation can live on
//    per-draw RNG paths without distorting the microbenchmarks.
//  * Thread-safe without contention — each metric keeps a small array of
//    cache-line-padded shards; a thread picks its shard once (thread_local)
//    and only ever does relaxed fetch_adds on it.  Readers merge shards,
//    which is exact because addition commutes: the merged value is
//    independent of scheduling.
//  * Stable addresses — Registry::counter() et al. return references that
//    stay valid for the process lifetime, so hot call sites cache them in
//    function-local statics.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace recover::obs {

namespace detail {

extern std::atomic<bool> g_metrics_enabled;

/// Shard index for the calling thread (stable per thread, < kShards).
std::size_t this_thread_shard() noexcept;

inline constexpr std::size_t kShards = 8;  // power of two

}  // namespace detail

/// Global on/off switch.  Off by default: binaries flip it on for
/// --metrics runs; the disabled path is the pay-nothing fast path.
inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled) noexcept;

/// Monotone event counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    if (!metrics_enabled()) return;
    shards_[detail::this_thread_shard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merged total across shards (exact: addition commutes).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::string name_;
  std::array<Shard, detail::kShards> shards_;
};

/// Last-writer-wins scalar (e.g. pool size, current sweep point).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Log₂-bucketed histogram of non-negative integer samples (latencies in
/// ns, step counts, window sizes, …).
///
/// Bucket 0 holds the value 0; bucket i ≥ 1 holds values v with
/// 2^(i−1) ≤ v < 2^i (i.e. i = bit_width(v)).  65 buckets cover the full
/// uint64 range, so record() never clips.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index a value lands in (exposed for tests / readers).
  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    std::size_t i = 0;
    while (v != 0) {
      v >>= 1;
      ++i;
    }
    return i;
  }

  /// Inclusive upper bound of bucket i (0, 1, 3, 7, …, 2^i − 1).
  static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    return i >= 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << i) - std::uint64_t{1};
  }

  void record(std::uint64_t v) noexcept {
    if (!metrics_enabled()) return;
    auto& shard = shards_[detail::this_thread_shard()];
    shard.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) /
                              static_cast<double>(count);
    }

    /// Quantile estimate at q: the midpoint of the log₂ bucket containing
    /// the ⌈q·count⌉-th smallest sample (bucket 0 — the value 0 — reports
    /// 0).  q is clamped to [0, 1]: q ≤ 0 reports the bucket of the
    /// minimum sample, q ≥ 1 the bucket of the maximum.
    ///
    /// Error bound: bucket i ≥ 1 spans [2^(i−1), 2^i − 1] and the midpoint
    /// is ≈ 1.5·2^(i−1), so the estimate is within a multiplicative factor
    /// of 1.5 of the true sample (midpoint/lo = 1.5, hi/midpoint < 4/3) —
    /// good enough to separate microseconds from milliseconds in a latency
    /// dump, not good enough to compare two values in the same bucket.
    [[nodiscard]] double quantile(double q) const {
      if (count == 0) return 0.0;
      double rank = std::ceil(q * static_cast<double>(count));
      if (rank < 1.0) rank = 1.0;
      if (rank > static_cast<double>(count)) {
        rank = static_cast<double>(count);
      }
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < kBuckets; ++i) {
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) >= rank && buckets[i] != 0) {
          if (i == 0) return 0.0;
          const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
          const double hi = std::ldexp(1.0, static_cast<int>(i)) - 1.0;
          return (lo + hi) / 2.0;
        }
      }
      return 0.0;  // unreachable: cumulative reaches count
    }
  };

  /// Merged view across shards (exact for the same reason as Counter).
  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot out;
    for (const auto& s : shards_) {
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < kBuckets; ++i) {
        out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  void reset() noexcept {
    for (auto& s : shards_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::string name_;
  std::array<Shard, detail::kShards> shards_;
};

/// Name → metric registry.  get-or-create is mutex-guarded (cold path);
/// returned references are stable, so hot paths cache them once:
///
///   static obs::Counter& draws =
///       obs::Registry::global().counter("rng.xoshiro.draws");
///   draws.add();
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };

  /// Merged, name-sorted view of every registered metric.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every metric (registrations and cached references survive).
  void reset_values();

  ~Registry();

 private:
  Registry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
  mutable Impl* impl_ = nullptr;
};

}  // namespace recover::obs
