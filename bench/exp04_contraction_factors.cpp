// Experiment E4 — Corollary 4.2 and Claims 5.1/5.2: one-step contraction
// parameters of the paper's Γ-couplings, measured over sampled Γ-pairs.
//
// Columns report, per (scenario, n, m): the worst per-pair mean distance
// after one coupled phase (β̂, to compare against the theory line
// 1 − 1/m for scenario A and 1 for scenario B), the smallest per-pair
// probability that the distance changes (α̂, theory ≥ 1/s ≥ 1/n for
// scenario B), and the Path Coupling Lemma bounds implied by the
// *measured* parameters next to the paper's symbolic bounds.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/coupling_a.hpp"
#include "src/balls/coupling_b.hpp"
#include "src/balls/random_states.hpp"
#include "src/core/contraction.hpp"
#include "src/core/path_coupling.hpp"
#include "src/obs/run_record.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp04_contraction_factors",
                "E4: measured path-coupling parameters vs theory");
  cli.flag("sizes", "comma-separated n sweep (m = 2n)", "8,16,32,64");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("pairs", "sampled Gamma-pairs per point", "12");
  cli.flag("trials", "coupled steps per pair", "4000");
  cli.flag("seed", "rng seed", "4");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto d = static_cast<int>(cli.integer("d"));
  const auto pairs = static_cast<int>(cli.integer("pairs"));
  const auto trials = static_cast<int>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const balls::AbkuRule rule(d);

  util::Table table({"scenario", "n", "m", "beta_hat", "beta_theory",
                     "alpha_hat", "alpha_theory", "bound(meas)",
                     "bound(paper)"});

  for (const std::int64_t n : sizes) {
    const std::int64_t m = 2 * n;
    const auto ns = static_cast<std::size_t>(n);

    const auto est_a = core::estimate_contraction(
        [&](int p, rng::Xoshiro256PlusPlus& eng) {
          return balls::random_gamma_pair(ns, m, eng, 1 + p % 3);
        },
        [&](std::pair<balls::LoadVector, balls::LoadVector>& pr,
            rng::Xoshiro256PlusPlus& eng) {
          return balls::coupled_step_a(pr.first, pr.second, rule, eng);
        },
        pairs, trials, seed);
    const double beta_a = 1.0 - 1.0 / static_cast<double>(m);
    table.row()
        .add("A")
        .integer(n)
        .integer(m)
        .num(est_a.beta_hat, 4)
        .num(beta_a, 4)
        .num(est_a.alpha_hat, 4)
        .num(1.0 / static_cast<double>(m), 4)
        .num(est_a.beta_hat < 1.0
                 ? core::path_coupling_bound_contractive(
                       est_a.beta_hat, static_cast<double>(m), 0.25)
                 : -1.0,
             0)
        .num(core::theorem1_bound(m, 0.25), 0);

    const auto est_b = core::estimate_contraction(
        [&](int p, rng::Xoshiro256PlusPlus& eng) {
          return balls::random_gamma_pair(ns, m, eng, 1 + p % 3);
        },
        [&](std::pair<balls::LoadVector, balls::LoadVector>& pr,
            rng::Xoshiro256PlusPlus& eng) {
          return balls::coupled_step_b(pr.first, pr.second, rule, eng);
        },
        pairs, trials, seed + 1);
    table.row()
        .add("B")
        .integer(n)
        .integer(m)
        .num(est_b.beta_hat, 4)
        .num(1.0, 4)
        .num(est_b.alpha_hat, 4)
        .num(1.0 / static_cast<double>(n), 4)
        .num(core::path_coupling_bound_martingale(
                 std::max(est_b.alpha_hat, 1e-9), static_cast<double>(m),
                 0.25),
             0)
        .num(core::claim53_bound(ns, m, 0.25), 0);
  }
  table.print(std::cout);
  run.add_table("contraction_parameters", table);
  std::printf(
      "\n# Scenario A: beta_hat tracks 1 - 1/m (Corollary 4.2) => "
      "contractive Lemma case (1).\n"
      "# Scenario B: beta_hat ~ 1 but alpha_hat >= 1/n (Claims 5.1/5.2) "
      "=> martingale Lemma case (2), giving the O(n m^2 ln 1/eps) of "
      "Claim 5.3.\n");
  return 0;
}
