# Empty compiler generated dependencies file for coupling_b_test.
# This may be replaced when dependencies are built.
