// Differential tests: the naive labeled (bin-identity) oracle and the
// normalized production chains must induce the same law on the load
// multiset — the paper's "ordering of bins is insignificant" claim,
// checked end to end.
#include <gtest/gtest.h>

#include "src/balls/exact_chain.hpp"
#include "src/balls/labeled.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/balls/static_alloc.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"

namespace recover::balls {
namespace {

TEST(LabeledState, BasicAccounting) {
  LabeledState s = LabeledState::from_loads({3, 0, 2});
  EXPECT_EQ(s.balls(), 5);
  EXPECT_EQ(s.max_load(), 3);
  EXPECT_EQ(s.nonempty_count(), 2u);
  s.add(1);
  s.remove(0);
  EXPECT_EQ(s.balls(), 5);
  EXPECT_EQ(s.load(1), 1);
  EXPECT_EQ(s.normalized().loads(),
            (std::vector<std::int64_t>{2, 2, 1}));
}

TEST(LabeledState, SamplersMatchDefinitions) {
  LabeledState s = LabeledState::from_loads({6, 0, 3, 1});
  rng::Xoshiro256PlusPlus eng(1);
  std::vector<std::int64_t> ball_counts(4, 0), bin_counts(4, 0);
  constexpr int kSamples = 90000;
  for (int i = 0; i < kSamples; ++i) {
    ++ball_counts[s.random_ball_bin(eng)];
    ++bin_counts[s.random_nonempty_bin(eng)];
  }
  EXPECT_EQ(ball_counts[1], 0);
  EXPECT_NEAR(static_cast<double>(ball_counts[0]) / kSamples, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(ball_counts[2]) / kSamples, 0.3, 0.01);
  EXPECT_EQ(bin_counts[1], 0);
  for (const std::size_t bin : {0u, 2u, 3u}) {
    EXPECT_NEAR(static_cast<double>(bin_counts[bin]) / kSamples, 1.0 / 3.0,
                0.01);
  }
}

// The heart of the differential suite: one-step law of the normalized
// state must be identical between oracle and production chain.  We use
// the exact transition row as the common reference.
TEST(LabeledDifferential, OneStepLawMatchesExactChain) {
  const std::size_t n = 4;
  const std::int64_t m = 6;
  PartitionSpace space(n, m);
  for (const auto removal :
       {RemovalKind::kBallWeighted, RemovalKind::kNonEmptyUniform}) {
    const auto exact = build_exact_chain(space, removal, AbkuRule(2));
    // Start from a labeled embedding of the crash state with shuffled
    // bin identities (bin 2 holds everything) — identity must not
    // matter.
    std::vector<std::int64_t> labeled_loads(n, 0);
    labeled_loads[2] = m;
    rng::Xoshiro256PlusPlus eng(42);
    stats::IntHistogram observed;
    constexpr int kTrials = 120000;
    for (int t = 0; t < kTrials; ++t) {
      if (removal == RemovalKind::kBallWeighted) {
        LabeledScenarioA chain(LabeledState::from_loads(labeled_loads), 2);
        chain.step(eng);
        observed.add(static_cast<std::int64_t>(
            space.index_of(chain.state().normalized())));
      } else {
        LabeledScenarioB chain(LabeledState::from_loads(labeled_loads), 2);
        chain.step(eng);
        observed.add(static_cast<std::int64_t>(
            space.index_of(chain.state().normalized())));
      }
    }
    const std::size_t start = space.all_in_one_index();
    for (const auto& [j, p] : exact.row(start)) {
      EXPECT_NEAR(observed.frequency(j), p, 0.01)
          << "state " << j << " removal "
          << (removal == RemovalKind::kBallWeighted ? "A" : "B");
    }
  }
}

TEST(LabeledDifferential, MultiStepMaxLoadLawMatches) {
  const std::size_t n = 8;
  const std::int64_t m = 16;
  constexpr int kSteps = 50;
  constexpr int kTrials = 20000;
  rng::Xoshiro256PlusPlus eng(7);
  stats::IntHistogram labeled_hist, normalized_hist;
  for (int t = 0; t < kTrials; ++t) {
    {
      LabeledScenarioA chain(
          LabeledState::from_loads(
              std::vector<std::int64_t>{0, 0, 0, m, 0, 0, 0, 0}),
          2);
      for (int s = 0; s < kSteps; ++s) chain.step(eng);
      labeled_hist.add(chain.state().max_load() * 100 +
                       static_cast<std::int64_t>(
                           chain.state().nonempty_count()));
    }
    {
      ScenarioAChain<AbkuRule> chain(LoadVector::all_in_one(n, m),
                                     AbkuRule(2));
      for (int s = 0; s < kSteps; ++s) chain.step(eng);
      normalized_hist.add(chain.state().max_load() * 100 +
                          static_cast<std::int64_t>(
                              chain.state().nonempty_count()));
    }
  }
  EXPECT_LT(stats::tv_distance(labeled_hist, normalized_hist), 0.03);
}

TEST(LabeledDifferential, AdapChoiceMatchesNormalizedRuleLaw) {
  // ADAP's labeled transcription vs the index-space implementation:
  // compare the distribution of the CHOSEN LOAD (identity-free).
  const std::vector<std::int64_t> loads = {5, 3, 3, 1, 0, 0};
  const LabeledState labeled = LabeledState::from_loads(loads);
  const LoadVector normalized = LoadVector::from_loads(loads);
  const ThresholdSchedule x = ThresholdSchedule::linear(1, 1, 4);
  const AdapRule rule{x};
  rng::Xoshiro256PlusPlus eng(11);
  stats::IntHistogram labeled_load, normalized_load;
  constexpr int kTrials = 80000;
  for (int t = 0; t < kTrials; ++t) {
    labeled_load.add(labeled.load(labeled.adap_choice(eng, x)));
    ProbeFresh<rng::Xoshiro256PlusPlus> probe(eng, normalized.bins());
    normalized_load.add(normalized.load(rule.place_index(normalized, probe)));
  }
  EXPECT_LT(stats::tv_distance(labeled_load, normalized_load), 0.02);
}

TEST(LabeledDifferential, StaticAllocationLawMatches) {
  const std::size_t n = 16;
  const std::int64_t m = 16;
  rng::Xoshiro256PlusPlus eng(13);
  stats::IntHistogram labeled_hist, normalized_hist;
  constexpr int kTrials = 8000;
  for (int t = 0; t < kTrials; ++t) {
    LabeledState s(n);
    for (std::int64_t b = 0; b < m; ++b) s.add(s.abku_choice(eng, 2));
    labeled_hist.add(s.max_load());
    normalized_hist.add(allocate_static(n, m, AbkuRule(2), eng).max_load());
  }
  EXPECT_LT(stats::tv_distance(labeled_hist, normalized_hist), 0.03);
}

}  // namespace
}  // namespace recover::balls
