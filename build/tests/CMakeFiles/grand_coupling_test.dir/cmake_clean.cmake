file(REMOVE_RECURSE
  "CMakeFiles/grand_coupling_test.dir/grand_coupling_test.cpp.o"
  "CMakeFiles/grand_coupling_test.dir/grand_coupling_test.cpp.o.d"
  "grand_coupling_test"
  "grand_coupling_test.pdb"
  "grand_coupling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grand_coupling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
