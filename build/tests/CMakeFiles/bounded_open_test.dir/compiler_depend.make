# Empty compiler generated dependencies file for bounded_open_test.
# This may be replaced when dependencies are built.
