// recover::cluster — the front-tier router daemon's core
// (docs/SERVING.md, "Cluster mode").
//
// A Router IS a serve::Server with the request-to-result layer swapped
// out (ServerOptions::dispatcher): same listen socket, bounded
// admission queue, two-tier deadline enforcement, and graceful drain,
// but run_cell is answered by consistent-hashing the request over N
// recover_serve backends instead of running the cell locally.
//
// Request path for run_cell:
//
//   parse (shared parse_run_cell — router and backend accept and
//   reject byte-identical inputs)
//     │
//     ▼
//   result cache (LRU, keyed by exp|cell|seed) ── hit ──► reply with
//     │ miss                                              cached bytes
//     ▼
//   hash ring route(digest) ──► forward to the first healthy backend,
//   walking clockwise on failure: transport errors and
//   overloaded/shutting_down replies re-hash to the next candidate
//   (safe — run_cell is pure, any backend computes the same bytes);
//   deadline_exceeded and invalid_params are the client's answer and
//   are returned as-is.  All candidates exhausted → `overloaded`.
//
// The forwarded deadline is the router's remaining budget minus the
// backend's EWMA round-trip estimate (two-tier deadlines: the backend
// gives up early enough for the router's reply to still make it out).
//
// Every other method (ping, list_cells, stats) is served locally by
// serve::dispatch — the router links the same sweep registry, so
// list_cells is byte-identical to a backend's.  `shutdown` is
// intercepted by the underlying server and drains the router.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/backend.hpp"
#include "src/cluster/cache.hpp"
#include "src/cluster/ring.hpp"
#include "src/serve/server.hpp"

namespace recover::cluster {

/// Build tag the router daemon reports via recover_build_info (the
/// backends report serve::kServeVersion — the version labels are how a
/// scrape tells the tiers apart).
inline constexpr const char* kClusterVersion = "recover-cluster/1.0";

struct RouterOptions {
  /// Listen socket, admission bound, default deadline, drain — the
  /// router's front door.  `dispatcher` is overwritten by the Router.
  serve::ServerOptions server;
  /// Fixed membership, in ring order of their ids.  Liveness is handled
  /// by health + failover, not by mutating membership at runtime.
  std::vector<BackendConfig> backends;
  BackendOptions backend;
  /// Result cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 4096;
  std::size_t ring_vnodes = 64;
};

/// Always-on router counters (plain atomics — available with metrics
/// off, like serve::ServerSnapshot).
struct RouterStats {
  std::uint64_t requests = 0;     // run_cell arrivals (post-parse)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t forwards = 0;     // backend calls attempted
  std::uint64_t failovers = 0;    // re-hashes past the primary
  std::uint64_t exhausted = 0;    // every candidate failed → overloaded
};

class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();  // stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Builds the ring, starts backend health probes, then starts the
  /// front server.  False (with a stderr diagnostic) when the listen
  /// socket cannot be set up or no backends were configured.
  bool start();

  [[nodiscard]] int port() const { return server_->port(); }

  void request_drain() { server_->request_drain(); }
  [[nodiscard]] bool draining() const { return server_->draining(); }
  void wait_drained() { server_->wait_drained(); }

  /// Full shutdown: drain the front server, then stop probes and close
  /// backend pools.  Idempotent.
  void stop();

  [[nodiscard]] serve::ServerSnapshot snapshot() const {
    return server_->snapshot();
  }
  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] ResultCache::Stats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] std::vector<Backend::Telemetry> backend_telemetry() const;
  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] const serve::Server& server() const { return *server_; }

 private:
  serve::HandlerResult dispatch(const serve::Request& req,
                                const serve::HandlerContext& ctx);
  serve::HandlerResult route_run_cell(const serve::Request& req,
                                      const serve::HandlerContext& ctx);
  void ticker_loop();

  RouterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;
  HashRing ring_;
  ResultCache cache_;
  std::unique_ptr<serve::Server> server_;
  bool started_ = false;

  std::atomic<std::uint64_t> forward_id_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> exhausted_{0};

  std::thread ticker_;
  std::mutex ticker_mutex_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
};

}  // namespace recover::cluster
