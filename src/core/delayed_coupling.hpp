// Delayed coupling — the estimator shaped like Theorem 2's proof.
//
// The proof of Theorem 2 runs the two copies INDEPENDENTLY for
// τ₀ = O(n² ln n) steps (after which both are in a low-diameter typical
// region w.h.p.) and only then applies the path coupling, whose bound
// improves because the relevant diameter has shrunk from n to O(ln n).
// (The same idea appears as "delayed path coupling" in Czumaj, Kanarek,
// Kutyłowski, Loryś 1998, cited as [10].)
//
// DelayedCoupling wraps any grand coupling: for the first `delay` steps
// the two copies consume independent randomness streams; the coupling is
// then built from their states and every further step shares randomness.
// Comparing total meeting times across delays measures how much of the
// coupling time is really spent waiting for the typical region (exp16).
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>

#include "src/rng/engines.hpp"
#include "src/util/assert.hpp"

namespace recover::core {

/// Chain must expose step(Engine&) and state(); CouplingFactory maps two
/// states to a grand coupling (step / coalesced / distance).
template <typename Chain, typename CouplingFactory>
class DelayedCoupling {
 public:
  using State = std::decay_t<decltype(std::declval<Chain>().state())>;
  using Coupling =
      std::invoke_result_t<CouplingFactory, const State&, const State&>;

  DelayedCoupling(Chain x, Chain y, CouplingFactory make_coupling,
                  std::int64_t delay, std::uint64_t seed)
      : x_(std::move(x)),
        y_(std::move(y)),
        make_coupling_(std::move(make_coupling)),
        remaining_delay_(delay),
        eng_x_(rng::derive_stream_seed(seed, 0xD1)),
        eng_y_(rng::derive_stream_seed(seed, 0xD2)) {
    RL_REQUIRE(delay >= 0);
  }

  /// One step of the overall process (free phase or coupled phase).
  template <typename Engine>
  void step(Engine& eng) {
    if (remaining_delay_ > 0) {
      x_.step(eng_x_);
      y_.step(eng_y_);
      --remaining_delay_;
      return;
    }
    if (!coupling_.has_value()) {
      coupling_.emplace(make_coupling_(x_.state(), y_.state()));
    }
    coupling_->step(eng);
  }

  [[nodiscard]] bool coalesced() const {
    return coupling_.has_value() && coupling_->coalesced();
  }

  [[nodiscard]] std::int64_t distance() const {
    if (coupling_.has_value()) return coupling_->distance();
    return x_.state().distance(y_.state());
  }

  [[nodiscard]] std::int64_t remaining_delay() const {
    return remaining_delay_;
  }

 private:
  Chain x_;
  Chain y_;
  CouplingFactory make_coupling_;
  std::int64_t remaining_delay_;
  rng::Xoshiro256PlusPlus eng_x_;
  rng::Xoshiro256PlusPlus eng_y_;
  std::optional<Coupling> coupling_;
};

/// Deduction-friendly helper.
template <typename Chain, typename CouplingFactory>
DelayedCoupling<Chain, CouplingFactory> make_delayed_coupling(
    Chain x, Chain y, CouplingFactory factory, std::int64_t delay,
    std::uint64_t seed) {
  return DelayedCoupling<Chain, CouplingFactory>(
      std::move(x), std::move(y), std::move(factory), delay, seed);
}

}  // namespace recover::core
