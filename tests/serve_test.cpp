// Tests for recover::serve: protocol framing/parsing unit tests plus
// loopback integration against a real Server on an ephemeral port —
// method mix, byte-deterministic run_cell across worker counts,
// malformed input (garbage, oversized lines, half-close), deadline 0,
// tiny-queue shedding, and graceful drain via the shutdown method.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/json_reader.hpp"
#include "src/obs/trace_buffer.hpp"
#include "src/serve/handlers.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/sweep/registry.hpp"

namespace recover::serve {
namespace {

// --- protocol unit tests --------------------------------------------------

TEST(Protocol, ParsesMinimalRequest) {
  Request req;
  const auto outcome = parse_request(
      "{\"schema\":\"recover.req/1\",\"id\":7,\"method\":\"ping\"}", req);
  ASSERT_TRUE(outcome.ok) << outcome.message;
  EXPECT_EQ(req.id, "7");
  EXPECT_EQ(req.method, "ping");
  EXPECT_TRUE(req.params.is_object());
  EXPECT_TRUE(req.params.members.empty());
  EXPECT_EQ(req.deadline_ms, -1);
}

TEST(Protocol, ParsesStringIdParamsAndDeadline) {
  Request req;
  const auto outcome = parse_request(
      "{\"schema\":\"recover.req/1\",\"id\":\"abc\",\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\"},\"deadline_ms\":2000}",
      req);
  ASSERT_TRUE(outcome.ok) << outcome.message;
  EXPECT_EQ(req.id, "\"abc\"");  // raw token, echoed verbatim
  EXPECT_EQ(req.deadline_ms, 2000);
  const auto* exp = req.params.find("exp");
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->text, "exp01");
}

TEST(Protocol, RejectsBadRequestsButRecoversId) {
  const struct {
    const char* line;
    const char* expect_id;
  } cases[] = {
      {"not json at all", "null"},
      {"{\"schema\":\"recover.req/2\",\"id\":3,\"method\":\"ping\"}", "3"},
      {"{\"id\":4,\"method\":\"ping\"}", "4"},  // schema missing
      {"{\"schema\":\"recover.req/1\",\"id\":5}", "5"},  // method missing
      {"{\"schema\":\"recover.req/1\",\"id\":6,\"method\":\"ping\","
       "\"deadline_ms\":-2}",
       "6"},
      {"{\"schema\":\"recover.req/1\",\"id\":8,\"method\":\"ping\","
       "\"params\":[1]}",
       "8"},  // params must be an object
      {"{\"schema\":\"recover.req/1\",\"method\":\"ping\"}",
       "null"},  // id required
  };
  for (const auto& c : cases) {
    Request req;
    const auto outcome = parse_request(c.line, req);
    EXPECT_FALSE(outcome.ok) << c.line;
    EXPECT_EQ(outcome.code, ErrorCode::kParseError) << c.line;
    EXPECT_EQ(req.id, c.expect_id) << c.line;
  }
}

TEST(Protocol, BoundsDeadlineMs) {
  // 86400000 (one day) is the cap; above it the reply must be a parse
  // error — an unbounded value would hit UB in the double→int64 cast
  // and wrap the server's ms→ns conversion.
  Request req;
  auto outcome = parse_request(
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\","
      "\"deadline_ms\":86400000}",
      req);
  ASSERT_TRUE(outcome.ok) << outcome.message;
  EXPECT_EQ(req.deadline_ms, 86400000);
  for (const char* bad : {"86400001", "1e300", "1e18"}) {
    Request rejected;
    const std::string line =
        std::string("{\"schema\":\"recover.req/1\",\"id\":1,"
                    "\"method\":\"ping\",\"deadline_ms\":") +
        bad + "}";
    outcome = parse_request(line, rejected);
    EXPECT_FALSE(outcome.ok) << bad;
    EXPECT_EQ(outcome.code, ErrorCode::kParseError) << bad;
  }
}

TEST(JsonReader, CapsNestingDepth) {
  // The reader recurses once per bracket; a hostile line of thousands
  // of '[' (well under the 64 KiB frame cap) must fail the parse, not
  // overflow the reader thread's stack.
  obs::JsonValue doc;
  std::string nested(40, '[');
  nested += "1";
  nested += std::string(40, ']');
  EXPECT_TRUE(obs::parse_json(nested, doc));

  std::string bomb(20000, '[');
  EXPECT_FALSE(obs::parse_json(bomb, doc));
  bomb += std::string(20000, ']');
  EXPECT_FALSE(obs::parse_json(bomb, doc));
  std::string object_bomb;
  for (int i = 0; i < 20000; ++i) object_bomb += "{\"k\":";
  EXPECT_FALSE(obs::parse_json(object_bomb, doc));
}

TEST(JsonReader, DecodesUnicodeEscapesToUtf8) {
  obs::JsonValue doc;
  ASSERT_TRUE(obs::parse_json("\"\\u0041\\u00e9\\u20ac\"", doc));
  EXPECT_EQ(doc.text, "A\xc3\xa9\xe2\x82\xac");  // "Aé€"
  // Astral code points arrive as surrogate pairs: U+1F600.
  ASSERT_TRUE(obs::parse_json("\"\\ud83d\\ude00\"", doc));
  EXPECT_EQ(doc.text, "\xf0\x9f\x98\x80");
  // Lone or misordered surrogates are malformed.
  EXPECT_FALSE(obs::parse_json("\"\\ud83d\"", doc));
  EXPECT_FALSE(obs::parse_json("\"\\ude00\"", doc));
  EXPECT_FALSE(obs::parse_json("\"\\ud83dx\"", doc));
  EXPECT_FALSE(obs::parse_json("\"\\ud83d\\u0041\"", doc));
}

TEST(Protocol, ResponsesAreSingleLines) {
  const std::string ok = make_result("7", "{\"pong\":true}");
  EXPECT_EQ(ok,
            "{\"schema\":\"recover.resp/1\",\"id\":7,\"ok\":true,"
            "\"result\":{\"pong\":true}}");
  const std::string err =
      make_error("\"abc\"", ErrorCode::kOverloaded, "queue full");
  EXPECT_EQ(err,
            "{\"schema\":\"recover.resp/1\",\"id\":\"abc\",\"ok\":false,"
            "\"error\":{\"code\":\"overloaded\",\"message\":\"queue "
            "full\"}}");
  EXPECT_EQ(ok.find('\n'), std::string::npos);
  EXPECT_EQ(err.find('\n'), std::string::npos);
}

TEST(Protocol, ErrorCodeNamesAreStable) {
  EXPECT_EQ(error_code_name(ErrorCode::kParseError), "parse_error");
  EXPECT_EQ(error_code_name(ErrorCode::kUnknownMethod), "unknown_method");
  EXPECT_EQ(error_code_name(ErrorCode::kInvalidParams), "invalid_params");
  EXPECT_EQ(error_code_name(ErrorCode::kOverloaded), "overloaded");
  EXPECT_EQ(error_code_name(ErrorCode::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(error_code_name(ErrorCode::kShuttingDown), "shutting_down");
}

TEST(LineReader, ReassemblesSplitFeeds) {
  LineReader reader;
  std::string line;
  reader.feed("hel", 3);
  EXPECT_EQ(reader.next_line(line), LineReader::Next::kNeedMore);
  reader.feed("lo\nwor", 6);
  ASSERT_EQ(reader.next_line(line), LineReader::Next::kLine);
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(reader.next_line(line), LineReader::Next::kNeedMore);
  reader.feed("ld\n", 3);
  ASSERT_EQ(reader.next_line(line), LineReader::Next::kLine);
  EXPECT_EQ(line, "world");
}

TEST(LineReader, StripsCarriageReturnAndSkipsBlankLines) {
  LineReader reader;
  std::string line;
  const std::string input = "a\r\n\r\n\nb\n";
  reader.feed(input.data(), input.size());
  ASSERT_EQ(reader.next_line(line), LineReader::Next::kLine);
  EXPECT_EQ(line, "a");
  ASSERT_EQ(reader.next_line(line), LineReader::Next::kLine);
  EXPECT_EQ(line, "b");
  EXPECT_EQ(reader.next_line(line), LineReader::Next::kNeedMore);
}

TEST(LineReader, ReportsOversizedLineOnceAndRecovers) {
  LineReader reader(/*max_line_bytes=*/8);
  std::string line;
  const std::string big(32, 'x');
  reader.feed(big.data(), big.size());
  EXPECT_EQ(reader.next_line(line), LineReader::Next::kOversized);
  EXPECT_EQ(reader.next_line(line), LineReader::Next::kNeedMore);
  const std::string rest = "tail\nok\n";
  reader.feed(rest.data(), rest.size());
  // "tail" was the remainder of the oversized line — discarded.
  ASSERT_EQ(reader.next_line(line), LineReader::Next::kLine);
  EXPECT_EQ(line, "ok");
}

TEST(LineReader, TornTrailingFragmentIsNeverSurfaced) {
  LineReader reader;
  std::string line;
  const std::string input = "complete\n{\"torn\":";
  reader.feed(input.data(), input.size());
  ASSERT_EQ(reader.next_line(line), LineReader::Next::kLine);
  EXPECT_EQ(line, "complete");
  EXPECT_EQ(reader.next_line(line), LineReader::Next::kNeedMore);
}

// --- handler unit tests (no sockets) --------------------------------------

TEST(Handlers, PingAndUnknownMethod) {
  Request req;
  req.method = "ping";
  HandlerContext ctx;
  auto res = dispatch(req, ctx);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.result_json, "{\"pong\":true}");

  req.method = "frobnicate";
  res = dispatch(req, ctx);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kUnknownMethod);
}

TEST(Handlers, RunCellValidatesParams) {
  HandlerContext ctx;
  ctx.cells_parallel = false;
  Request req;
  req.method = "run_cell";
  // No params at all.
  auto res = dispatch(req, ctx);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kInvalidParams);
  // Unknown experiment.
  ASSERT_TRUE(obs::parse_json(
      "{\"exp\":\"nope\",\"params\":{\"m\":8}}", req.params));
  res = dispatch(req, ctx);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kInvalidParams);
  // Non-integer axis.
  ASSERT_TRUE(obs::parse_json(
      "{\"exp\":\"exp01\",\"params\":{\"m\":1.5}}", req.params));
  res = dispatch(req, ctx);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kInvalidParams);
}

// --- loopback client ------------------------------------------------------

/// Minimal blocking client: one connection, synchronous call/response.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        fd_ >= 0 && ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                              sizeof addr) == 0;
    if (connected_) {
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  bool send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads the next complete response line ("" on EOF/error).
  std::string read_line() {
    std::string line;
    while (true) {
      if (framer_.next_line(line) == LineReader::Next::kLine) return line;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return "";
      }
      framer_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  /// Sends one request line and waits for its reply (parsed).
  obs::JsonValue call(const std::string& request_line) {
    EXPECT_TRUE(send_raw(request_line + "\n"));
    const std::string reply = read_line();
    EXPECT_FALSE(reply.empty());
    obs::JsonValue doc;
    EXPECT_TRUE(obs::parse_json(reply, doc)) << reply;
    return doc;
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  bool connected_ = false;
  LineReader framer_;
};

bool response_ok(const obs::JsonValue& doc) {
  const auto* ok = doc.find("ok");
  return ok != nullptr && ok->kind == obs::JsonValue::Kind::kBool &&
         ok->boolean;
}

std::string error_code_of(const obs::JsonValue& doc) {
  const auto* error = doc.find("error");
  const auto* code = error != nullptr ? error->find("code") : nullptr;
  return code != nullptr && code->is_string() ? code->text : "";
}

/// Registers a test-only experiment that sleeps until cancelled (or a
/// short cap), so queue-full and deadline paths are cheap to hit.
void register_slow_experiment_once() {
  static const bool done = [] {
    sweep::Registry::global().add(sweep::Experiment{
        "serve_test_slow",
        "test-only: sleeps ~holds_ms per cell, polls cancellation",
        "holds_ms=50",
        {"slept_ms"},
        [](const sweep::Cell& cell, const sweep::CellContext& ctx) {
          const auto holds_ms = cell.at("holds_ms");
          const auto until = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(holds_ms);
          long slept = 0;
          while (std::chrono::steady_clock::now() < until) {
            if (ctx.cancelled && ctx.cancelled()) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ++slept;
          }
          sweep::CellResult out;
          out.set("slept_ms", static_cast<double>(slept));
          return out;
        },
        {"holds_ms"}});
    return true;
  }();
  (void)done;
}

ServerOptions loopback_options() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.workers = 2;
  return options;
}

// --- loopback integration -------------------------------------------------

TEST(ServeLoopback, PingListCellsRunCellStats) {
  Server server(loopback_options());
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  auto doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\"}");
  EXPECT_TRUE(response_ok(doc));
  const auto* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  const auto* pong = result->find("pong");
  ASSERT_NE(pong, nullptr);
  EXPECT_TRUE(pong->boolean);

  doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":2,\"method\":\"list_cells\"}");
  ASSERT_TRUE(response_ok(doc));
  const auto* experiments = doc.find("result")->find("experiments");
  ASSERT_NE(experiments, nullptr);
  bool has_exp01 = false;
  for (const auto& exp : experiments->items) {
    const auto* name = exp.find("name");
    if (name != nullptr && name->text == "exp01") has_exp01 = true;
  }
  EXPECT_TRUE(has_exp01);

  doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":3,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\",\"seed\":9,"
      "\"params\":{\"m\":16,\"d\":2,\"density\":1,\"replicas\":2}}}");
  ASSERT_TRUE(response_ok(doc));
  const auto* values = doc.find("result")->find("values");
  ASSERT_NE(values, nullptr);
  EXPECT_FALSE(values->members.empty());

  doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":4,\"method\":\"stats\"}");
  ASSERT_TRUE(response_ok(doc));
  const auto* requests = doc.find("result")->find("requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->number, 4.0);
}

TEST(ServeLoopback, RunCellIsByteDeterministicAcrossWorkerCounts) {
  const std::string req =
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\",\"seed\":123,"
      "\"params\":{\"m\":32,\"d\":2,\"density\":1,\"replicas\":4}}}";
  std::vector<std::string> replies;
  for (const int workers : {1, 4, 4}) {
    ServerOptions options = loopback_options();
    options.workers = workers;
    options.cells_parallel = (workers != 1);  // pool vs serial replicas
    Server server(options);
    ASSERT_TRUE(server.start());
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_raw(req + "\n"));
    const std::string reply = client.read_line();
    ASSERT_FALSE(reply.empty());
    replies.push_back(reply);
  }
  // Same request content → byte-identical reply, regardless of worker
  // count, pool parallelism, or which server instance answered.
  EXPECT_EQ(replies[0], replies[1]);
  EXPECT_EQ(replies[1], replies[2]);
}

TEST(ServeLoopback, GarbageLineGetsParseErrorAndConnectionSurvives) {
  Server server(loopback_options());
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  auto doc = client.call("this is not json");
  EXPECT_FALSE(response_ok(doc));
  EXPECT_EQ(error_code_of(doc), "parse_error");

  // Valid JSON, wrong shape: still parse_error, id still echoed.
  doc = client.call("{\"schema\":\"recover.req/1\",\"id\":42}");
  EXPECT_FALSE(response_ok(doc));
  EXPECT_EQ(error_code_of(doc), "parse_error");
  const auto* id = doc.find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->number, 42.0);

  // The connection is still usable afterwards.
  doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":2,\"method\":\"ping\"}");
  EXPECT_TRUE(response_ok(doc));

  const ServerSnapshot snap = server.snapshot();
  EXPECT_GE(snap.protocol_errors_total, 2u);
}

TEST(ServeLoopback, OversizedLineGetsParseErrorAndConnectionSurvives) {
  ServerOptions options = loopback_options();
  options.max_line_bytes = 256;
  Server server(options);
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  std::string big = "{\"schema\":\"recover.req/1\",\"id\":1,\"pad\":\"";
  big.append(1024, 'x');
  big += "\"}\n";
  ASSERT_TRUE(client.send_raw(big));
  const std::string reply = client.read_line();
  ASSERT_FALSE(reply.empty());
  obs::JsonValue doc;
  ASSERT_TRUE(obs::parse_json(reply, doc));
  EXPECT_EQ(error_code_of(doc), "parse_error");

  doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":2,\"method\":\"ping\"}");
  EXPECT_TRUE(response_ok(doc));
}

TEST(ServeLoopback, HalfClosedConnectionStillReceivesReplies) {
  register_slow_experiment_once();
  Server server(loopback_options());
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // Send a request that takes ~50ms, then half-close immediately: the
  // reply must still come back on the write side of the socket.
  ASSERT_TRUE(client.send_raw(
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"serve_test_slow\","
      "\"params\":{\"holds_ms\":50}}}\n"));
  client.half_close();
  const std::string reply = client.read_line();
  ASSERT_FALSE(reply.empty());
  obs::JsonValue doc;
  ASSERT_TRUE(obs::parse_json(reply, doc));
  EXPECT_TRUE(response_ok(doc));
}

TEST(ServeLoopback, DeadlineZeroExpiresImmediately) {
  register_slow_experiment_once();
  Server server(loopback_options());
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // deadline_ms 0 = already expired on arrival: the cell body observes
  // cancellation at its first poll and the reply is deadline_exceeded —
  // without waiting out the 10s hold.
  const auto doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"serve_test_slow\","
      "\"params\":{\"holds_ms\":10000}},\"deadline_ms\":0}");
  EXPECT_FALSE(response_ok(doc));
  EXPECT_EQ(error_code_of(doc), "deadline_exceeded");
  EXPECT_GE(server.snapshot().deadline_exceeded_total, 1u);
}

TEST(ServeLoopback, TinyQueueShedsWithOverloaded) {
  register_slow_experiment_once();
  ServerOptions options = loopback_options();
  options.workers = 1;
  options.queue_capacity = 1;
  Server server(options);
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // Burst: 1 executing + 1 queued; the rest must shed. All on one
  // connection so arrival order (and thus reply order) is serialized.
  constexpr int kBurst = 8;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += "{\"schema\":\"recover.req/1\",\"id\":" + std::to_string(i) +
             ",\"method\":\"run_cell\",\"params\":{"
             "\"exp\":\"serve_test_slow\",\"params\":{\"holds_ms\":100}}}\n";
  }
  ASSERT_TRUE(client.send_raw(burst));
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const std::string reply = client.read_line();
    ASSERT_FALSE(reply.empty()) << "reply " << i;
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parse_json(reply, doc));
    if (response_ok(doc)) {
      ++ok;
    } else {
      EXPECT_EQ(error_code_of(doc), "overloaded");
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);  // capacity 1 + burst 8 ⇒ most are shed
  EXPECT_GT(ok, 0);    // but admitted work completes
  EXPECT_EQ(server.snapshot().shed_total, static_cast<std::uint64_t>(shed));
}

TEST(ServeLoopback, ShutdownMethodDrainsGracefully) {
  Server server(loopback_options());
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  auto doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"shutdown\"}");
  ASSERT_TRUE(response_ok(doc));
  const auto* draining = doc.find("result")->find("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_TRUE(draining->boolean);
  // The ack is written *before* request_drain() (the initiator must
  // always see it), so the flag can trail the reply by a scheduler
  // quantum — poll instead of sampling once.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!server.draining() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(server.draining());

  // New work on the same (still open) connection is refused.
  doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":2,\"method\":\"ping\"}");
  EXPECT_FALSE(response_ok(doc));
  EXPECT_EQ(error_code_of(doc), "shutting_down");

  server.wait_drained();
  server.stop();
}

TEST(ServeLoopback, StopWithInFlightWorkFinishesIt) {
  register_slow_experiment_once();
  Server server(loopback_options());
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.send_raw(
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"serve_test_slow\","
      "\"params\":{\"holds_ms\":60}}}\n"));
  // Give the reader a moment to admit the request, then drain: the
  // admitted request must be answered, not dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.request_drain();
  const std::string reply = client.read_line();
  ASSERT_FALSE(reply.empty());
  obs::JsonValue doc;
  ASSERT_TRUE(obs::parse_json(reply, doc));
  EXPECT_TRUE(response_ok(doc));
  server.wait_drained();
  server.stop();
}

// --- observability: stats window fields, access log, req_id ---------------

TEST(ServeLoopback, StatsReportsVersionUptimeAndWindow) {
  Server server(loopback_options());
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  client.call("{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\"}");
  const auto doc = client.call(
      "{\"schema\":\"recover.req/1\",\"id\":2,\"method\":\"stats\"}");
  ASSERT_TRUE(response_ok(doc));
  const auto* result = doc.find("result");
  ASSERT_NE(result, nullptr);

  // New fields.
  const auto* version = result->find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->text, kServeVersion);
  const auto* uptime = result->find("uptime_ms");
  ASSERT_NE(uptime, nullptr);
  EXPECT_GE(uptime->number, 0.0);
  const auto* window_requests = result->find("window_requests");
  ASSERT_NE(window_requests, nullptr);
  // The live tail makes both requests visible before any tick.
  EXPECT_GE(window_requests->number, 2.0);
  for (const char* name : {"window_span_ms", "window_shed", "window_qps",
                           "window_p50_us", "window_p95_us",
                           "window_p99_us"}) {
    EXPECT_NE(result->find(name), nullptr) << name;
  }
  // Old fields survive (additive change, not a reshape).
  for (const char* name :
       {"connections_total", "requests_total", "responses_ok", "shed_total",
        "queue_depth", "queue_capacity", "in_flight", "draining"}) {
    EXPECT_NE(result->find(name), nullptr) << name;
  }
  server.stop();
}

TEST(ServeLoopback, AccessLogHasOneLinePerCompletedRequest) {
  const std::string path =
      ::testing::TempDir() + "/serve_test_access.jsonl";
  std::remove(path.c_str());
  ServerOptions options = loopback_options();
  options.access_log_path = path;
  {
    Server server(options);
    ASSERT_TRUE(server.start());
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_TRUE(response_ok(client.call(
        "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\"}")));
    EXPECT_TRUE(response_ok(client.call(
        "{\"schema\":\"recover.req/1\",\"id\":2,\"method\":\"run_cell\","
        "\"params\":{\"exp\":\"exp01\",\"seed\":9,"
        "\"params\":{\"m\":16,\"d\":2,\"density\":1,\"replicas\":2}}}")));
    EXPECT_FALSE(response_ok(client.call(
        "{\"schema\":\"recover.req/1\",\"id\":3,\"method\":\"nope\"}")));
    server.stop();  // drains the log
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<obs::JsonValue> lines;
  std::string text;
  while (std::getline(in, text)) {
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parse_json(text, doc)) << text;
    lines.push_back(std::move(doc));
  }
  ASSERT_EQ(lines.size(), 3u);
  // One line per request, in completion order on this single connection,
  // with deterministic req_ids.
  EXPECT_EQ(lines[0].find("req_id")->text, "c1-1");
  EXPECT_EQ(lines[0].find("method")->text, "ping");
  EXPECT_EQ(lines[0].find("status")->text, "ok");
  EXPECT_EQ(lines[1].find("req_id")->text, "c1-2");
  EXPECT_EQ(lines[1].find("method")->text, "run_cell");
  EXPECT_EQ(lines[1].find("cell")->text, "m=16,d=2,density=1,replicas=2");
  EXPECT_GE(lines[1].find("run_ns")->number, 0.0);
  EXPECT_EQ(lines[2].find("req_id")->text, "c1-3");
  EXPECT_EQ(lines[2].find("status")->text, "error");
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("schema")->text, "recover.access/1");
    EXPECT_EQ(line.find("deadline")->text, "none");
  }
  std::remove(path.c_str());
}

TEST(ServeLoopback, ReqIdAppearsOnRequestTraceSpan) {
  const bool trace_was = obs::trace_enabled();
  obs::TraceCollector::global().reset_for_tests();
  obs::set_trace_enabled(true);
  {
    Server server(loopback_options());
    ASSERT_TRUE(server.start());
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_TRUE(response_ok(client.call(
        "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\"}")));
    server.stop();
  }
  obs::set_trace_enabled(false);

  // The per-request span carries "req_id method" in its detail, so a
  // trace straggler can be joined against its access-log line.
  bool found = false;
  for (const auto& thread : obs::TraceCollector::global().collect()) {
    for (const auto& e : thread.events) {
      if (e.type == obs::TraceEvent::Type::kBegin &&
          std::string_view(e.name) == "serve.request_ns" &&
          std::string_view(e.detail) == "c1-1 ping") {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
  obs::TraceCollector::global().reset_for_tests();
  obs::set_trace_enabled(trace_was);
}

}  // namespace
}  // namespace recover::serve
