// Registry of sweepable experiment cells.
//
// A SweepCell is the per-grid-point body of an experiment, extracted from
// its bench binary: a pure-ish callable from (Cell parameters, seed) to a
// flat list of named numeric results.  Registering it here lets the same
// body run three ways with bit-identical results:
//
//   * inside its original exp* binary (one cell at a time, replicas
//     parallel within the cell),
//   * under bench/sweep_runner (cells parallel across the grid via the
//     work-stealing scheduler, replicas serial within each cell),
//   * resumed from a checkpoint (not run at all).
//
// Determinism contract: a cell may use randomness only through
// ctx.seed (derived as rng::substream(master_seed, cell.index)), must not
// read global mutable state, and must emit every result through the
// returned CellResult in result_columns order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/sweep/grid.hpp"

namespace recover::sweep {

struct CellContext {
  /// Per-cell RNG substream root; trial streams derive from it by index.
  std::uint64_t seed = 1;
  /// True when the cell owns the machine (exp binaries); false under the
  /// sweep scheduler, which parallelizes across cells instead.
  bool parallel_within_cell = false;
  /// Cooperative cancellation (empty = never): long-running bodies poll
  /// it at natural checkpoints and return early when it fires.  Used by
  /// the serve deadline path (docs/SERVING.md); a cancelled cell's
  /// result is discarded by the caller, so polling can never change the
  /// values of a run that completes.
  std::function<bool()> cancelled;
  /// Request id of the serve request that triggered this cell (empty
  /// outside the daemon).  Purely observational — bodies may thread it
  /// into their own diagnostics; it never influences results (the seed
  /// above is the only result-bearing input).
  std::string req_id;
};

struct CellResult {
  std::vector<std::pair<std::string, double>> values;

  void set(std::string name, double value) {
    values.emplace_back(std::move(name), value);
  }
  /// Value by name; aborts if absent (a cell that forgot a registered
  /// column would otherwise silently misalign the aggregate table).
  [[nodiscard]] double at(const std::string& name) const;
};

using CellFn = std::function<CellResult(const Cell&, const CellContext&)>;

struct Experiment {
  std::string name;          // registry key, e.g. "exp01"
  std::string description;   // one line, shown by sweep_runner --list
  std::string default_grid;  // used when --grid is omitted
  std::vector<std::string> result_columns;  // order of CellResult values
  CellFn run;
  /// Axes the body reads with Cell::at (which aborts when absent).  The
  /// serve/cluster request validator rejects a run_cell that omits one
  /// as invalid_params BEFORE the body runs — a remote peer must never
  /// be able to reach that abort.  Axes read with Cell::get defaults
  /// don't belong here.
  std::vector<std::string> required_params;
};

class Registry {
 public:
  /// Process-wide registry; the built-in experiment cells (exp01, exp03,
  /// exp06, exp10) are registered on first access.
  static Registry& global();

  /// Aborts on duplicate names: two bodies claiming the same experiment
  /// would make checkpoints ambiguous.
  void add(Experiment experiment);

  [[nodiscard]] const Experiment* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  Registry() = default;
  std::vector<Experiment> experiments_;
};

namespace detail {
/// Defined in cells_builtin.cpp; called once by Registry::global().
void register_builtin(Registry& registry);
}  // namespace detail

}  // namespace recover::sweep
