# Empty compiler generated dependencies file for exp05_orientation_contraction.
# This may be replaced when dependencies are built.
