# Empty dependencies file for exp11_open_systems.
# This may be replaced when dependencies are built.
