#include "src/certify/compare.hpp"

#include <cmath>
#include <cstdio>
#include <map>

#include "src/stats/histogram.hpp"
#include "src/util/assert.hpp"

namespace recover::certify {

std::string LawCheck::describe() const {
  if (impossible) {
    return "impossible outcome '" + impossible_key + "' after " +
           std::to_string(trials) + " trials";
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "chi2=%.3f df=%d p=%.3g tv=%.4f trials=%lld", chi2, df,
                pvalue, tv, static_cast<long long>(trials));
  return buf;
}

LawCheck law_check_from_counts(const std::vector<std::int64_t>& counts,
                               const std::vector<double>& probs) {
  RL_REQUIRE(counts.size() == probs.size());
  RL_REQUIRE(!counts.empty());
  LawCheck check;
  for (const auto c : counts) check.trials += c;
  RL_REQUIRE(check.trials > 0);

  // A draw landing on a prob-0 bucket is an unconditional failure.
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (probs[i] <= 0.0 && counts[i] > 0) {
      check.impossible = true;
      check.impossible_key = "bucket " + std::to_string(i);
      return check;
    }
  }

  check.tv = stats::tv_distance(counts, probs);

  // Cochran pooling: buckets with expected count < 5 merge into one
  // composite bucket so the χ² approximation holds.
  const auto total = static_cast<double>(check.trials);
  std::vector<std::int64_t> pooled_counts;
  std::vector<double> pooled_probs;
  std::int64_t pool_count = 0;
  double pool_prob = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (probs[i] * total < 5.0) {
      pool_count += counts[i];
      pool_prob += probs[i];
    } else {
      pooled_counts.push_back(counts[i]);
      pooled_probs.push_back(probs[i]);
    }
  }
  if (pool_prob > 0.0) {
    pooled_counts.push_back(pool_count);
    pooled_probs.push_back(pool_prob);
  }
  if (pooled_counts.size() < 2) {
    // Degenerate after pooling (near-deterministic law): the impossible-
    // outcome scan above is the whole test.
    return check;
  }
  check.chi2 = stats::chi_square_statistic(pooled_counts, pooled_probs);
  check.df = static_cast<int>(pooled_counts.size()) - 1;
  check.pvalue = stats::chi_square_pvalue(check.chi2, check.df);
  return check;
}

LawCheck check_sampled_law(const StepLaw& expected,
                           const std::function<std::string()>& draw,
                           std::int64_t trials) {
  RL_REQUIRE(!expected.empty());
  RL_REQUIRE(trials > 0);
  std::map<std::string, std::size_t> slot;
  std::vector<double> probs;
  for (const auto& [key, p] : expected) {
    const auto [it, inserted] = slot.emplace(key, probs.size());
    if (inserted) {
      probs.push_back(p);
    } else {
      probs[it->second] += p;  // tolerate duplicate keys in the law
    }
  }
  std::vector<std::int64_t> counts(probs.size(), 0);
  for (std::int64_t t = 0; t < trials; ++t) {
    const std::string key = draw();
    const auto it = slot.find(key);
    if (it == slot.end()) {
      LawCheck check;
      check.trials = t + 1;
      check.impossible = true;
      check.impossible_key = key;
      return check;
    }
    ++counts[it->second];
  }
  return law_check_from_counts(counts, probs);
}

LawCheck check_sampled_index_law(const std::vector<double>& probs,
                                 const std::function<std::size_t()>& draw,
                                 std::int64_t trials) {
  RL_REQUIRE(!probs.empty());
  RL_REQUIRE(trials > 0);
  std::vector<std::int64_t> counts(probs.size(), 0);
  for (std::int64_t t = 0; t < trials; ++t) {
    const std::size_t i = draw();
    if (i >= probs.size() || probs[i] <= 0.0) {
      LawCheck check;
      check.trials = t + 1;
      check.impossible = true;
      check.impossible_key = "index " + std::to_string(i);
      return check;
    }
    ++counts[i];
  }
  return law_check_from_counts(counts, probs);
}

bool MeanCheck::pass() const {
  return std::abs(mean - expected) <= tolerance;
}

std::string MeanCheck::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "mean=%.6f expected=%.6f tol=%.6f stderr=%.2g n=%lld", mean,
                expected, tolerance, stderror,
                static_cast<long long>(samples));
  return buf;
}

MeanCheck check_mc_mean(const stats::Summary& summary, double expected,
                        double sigmas, double slack) {
  MeanCheck check;
  check.mean = summary.mean();
  check.expected = expected;
  check.stderror = summary.stderror();
  check.tolerance = sigmas * check.stderror + slack;
  check.samples = summary.count();
  return check;
}

}  // namespace recover::certify
