// recover::cluster — consistent-hash ring for backend placement
// (docs/SERVING.md, "Cluster mode").
//
// Each backend contributes `vnodes` points on a 64-bit ring, placed at
// fnv1a64("<backend-id>#<vnode>") — a pure function of the backend's
// identity, so every router replica (and every restart) builds the
// identical ring with no coordination.  A request digest routes to the
// first point clockwise from it; route() returns ALL backends in that
// clockwise order (distinct, each once), which doubles as the failover
// sequence: when the owner is draining or dead the router walks to the
// next backend, and because run_cell replies are pure functions of the
// request, re-hashing changes which process answers but never what
// bytes come back.
//
// Adding or removing a backend moves only the keys whose owning arc
// changed — ~1/N of the keyspace with N backends (the classic
// consistent-hashing bound, asserted by tests/cluster_test.cpp).
//
// Not thread-safe: the router builds the ring once at startup and
// treats membership as fixed; liveness is handled by skipping unhealthy
// backends along the route, not by mutating the ring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace recover::cluster {

class HashRing {
 public:
  /// More vnodes = smoother balance, linearly larger ring.  64 keeps
  /// the per-backend load spread within a few percent for small N.
  explicit HashRing(std::size_t vnodes = 64);

  /// Adds `backend` (an opaque dense index, typically the position in
  /// the router's backend vector) under the stable identity `id`
  /// (e.g. "127.0.0.1:9001").  Aborts-free; duplicate indices are the
  /// caller's bug and simply double the backend's arc share.
  void add(std::size_t backend, const std::string& id);

  /// Removes every point of `backend`.  Keys on its arcs fall to their
  /// clockwise successors; all other placements are untouched.
  void remove(std::size_t backend);

  /// All live backends in clockwise ring order starting at the owner of
  /// `digest`: element 0 is the primary, the rest are the failover
  /// sequence.  Empty when the ring is empty.
  [[nodiscard]] std::vector<std::size_t> route(std::uint64_t digest) const;

  /// Primary owner only; SIZE_MAX when the ring is empty.
  [[nodiscard]] std::size_t owner(std::uint64_t digest) const;

  [[nodiscard]] std::size_t backend_count() const;
  [[nodiscard]] bool empty() const { return points_.empty(); }

 private:
  struct Point {
    std::uint64_t position;
    std::size_t backend;
  };

  std::size_t vnodes_;
  std::vector<Point> points_;  // sorted by position
};

}  // namespace recover::cluster
