#include "src/balls/rules.hpp"

#include <cmath>

namespace recover::balls {

std::vector<double> AbkuRule::placement_pmf(std::size_t n) const {
  RL_REQUIRE(n > 0);
  std::vector<double> pmf(n);
  const auto nd = static_cast<double>(n);
  double prev = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double cur = std::pow(static_cast<double>(j + 1) / nd, d_);
    pmf[j] = cur - prev;
    prev = cur;
  }
  return pmf;
}

std::vector<double> AdapRule::placement_pmf(const LoadVector& v) const {
  const std::size_t n = v.bins();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> placed(n, 0.0);
  // surviving[b] = P(best index == b after t probes, not yet stopped).
  std::vector<double> surviving(n, inv_n);  // after the first probe
  // The clamped schedule guarantees every index stops once the probe
  // count reaches the largest stored threshold.
  const int max_rounds = x_.values().back();
  for (int t = 1; t <= max_rounds; ++t) {
    // Stop the indices whose threshold is covered by t probes.
    double alive = 0;
    for (std::size_t b = 0; b < n; ++b) {
      if (surviving[b] <= 0) continue;
      if (x_.at(v.load(b)) <= t) {
        placed[b] += surviving[b];
        surviving[b] = 0;
      } else {
        alive += surviving[b];
      }
    }
    if (alive <= 0) break;
    // One more probe u ~ U[n]: best' = max(best, u).
    std::vector<double> next(n, 0.0);
    double prefix = 0;  // Σ_{b < b'} surviving[b]
    for (std::size_t b = 0; b < n; ++b) {
      next[b] = surviving[b] * (static_cast<double>(b + 1) * inv_n) +
                prefix * inv_n;
      prefix += surviving[b];
    }
    surviving = std::move(next);
  }
  double total = 0;
  for (const double p : placed) total += p;
  RL_REQUIRE(std::abs(total - 1.0) < 1e-9);
  return placed;
}

ThresholdSchedule ThresholdSchedule::linear(int base, int slope, int cap) {
  RL_REQUIRE(base >= 1);
  RL_REQUIRE(slope >= 0);
  RL_REQUIRE(cap >= base);
  std::vector<int> x;
  int value = base;
  while (value < cap) {
    x.push_back(value);
    value += slope;
    if (slope == 0) break;
  }
  x.push_back(cap);
  return ThresholdSchedule(std::move(x));
}

}  // namespace recover::balls
