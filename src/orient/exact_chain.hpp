// Exact finite-state representation of the lazy greedy edge-orientation
// chain (§6).
//
// The paper's state space Ψ is the set of states reachable from the
// all-zero difference vector x̂; by Ajtai et al. / Anderson et al. the
// differences stay within ±⌈n/2⌉ under greedy, so Ψ is finite and small
// for small n.  We enumerate it by BFS over the (φ, ψ) transitions and
// build the exact one-step law:
//   with probability ½ nothing happens (lazy bit of Remark 1);
//   otherwise each unordered rank pair {φ < ψ} has probability
//   (n choose 2)⁻¹ and applies the balancing move of §6.
// The resulting core::SparseChain feeds the same exact-mixing machinery
// exp09 uses for the balls chains, giving ground truth for Theorem 2's
// pipeline (exp14).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/core/exact_mixing.hpp"
#include "src/orient/state.hpp"

namespace recover::orient {

class OrientationSpace {
 public:
  /// BFS closure of the zero state under greedy arrivals.
  explicit OrientationSpace(std::size_t n);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t size() const { return states_.size(); }

  [[nodiscard]] const DiffState& state(std::size_t i) const {
    return states_[i];
  }

  [[nodiscard]] std::size_t index_of(const DiffState& s) const;

  /// Index of a state if reachable, npos-like sentinel otherwise.
  [[nodiscard]] std::optional<std::size_t> find(const DiffState& s) const;

  /// Index of the all-zero state x̂.
  [[nodiscard]] std::size_t zero_index() const;

  /// Index of a reachable state with maximal unfairness (an adversarial
  /// start that is guaranteed to lie inside Ψ).
  [[nodiscard]] std::size_t most_unfair_index() const;

 private:
  std::size_t n_;
  std::vector<DiffState> states_;
  std::map<std::vector<std::int64_t>, std::size_t> index_;
};

/// Exact transition matrix of one lazy greedy step over Ψ.
core::SparseChain build_exact_orientation_chain(const OrientationSpace& space);

}  // namespace recover::orient
