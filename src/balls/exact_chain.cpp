#include "src/balls/exact_chain.hpp"

#include <algorithm>

#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"

namespace recover::balls {
namespace {

// Recursively enumerates non-increasing vectors of length exactly n
// (padded with zeros) summing to m, each part at most `cap`.
void enumerate_partitions(std::int64_t remaining, std::int64_t cap,
                          std::size_t slots,
                          std::vector<std::int64_t>& prefix,
                          std::vector<std::vector<std::int64_t>>& out) {
  if (slots == 0) {
    if (remaining == 0) out.push_back(prefix);
    return;
  }
  if (remaining == 0) {
    std::vector<std::int64_t> full = prefix;
    full.resize(prefix.size() + slots, 0);
    out.push_back(std::move(full));
    return;
  }
  const std::int64_t hi = std::min<std::int64_t>(cap, remaining);
  // Largest remaining part must cover remaining / slots on average.
  for (std::int64_t part = hi; part >= 1; --part) {
    if (part * static_cast<std::int64_t>(slots) < remaining) break;
    prefix.push_back(part);
    enumerate_partitions(remaining - part, part, slots - 1, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

PartitionSpace::PartitionSpace(std::size_t n, std::int64_t m) : n_(n), m_(m) {
  RL_REQUIRE(n >= 1);
  RL_REQUIRE(m >= 1);
  std::vector<std::int64_t> prefix;
  enumerate_partitions(m, m, n, prefix, states_);
  std::sort(states_.begin(), states_.end());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    index_[states_[i]] = i;
  }
}

LoadVector PartitionSpace::load_vector(std::size_t i) const {
  RL_REQUIRE(i < states_.size());
  return LoadVector::from_loads(states_[i]);
}

std::size_t PartitionSpace::index_of(const LoadVector& v) const {
  const auto it = index_.find(v.loads());
  RL_REQUIRE(it != index_.end());
  return it->second;
}

std::size_t PartitionSpace::balanced_index() const {
  return index_of(LoadVector::balanced(n_, m_));
}

std::size_t PartitionSpace::all_in_one_index() const {
  return index_of(LoadVector::all_in_one(n_, m_));
}

core::SparseChain build_exact_chain_general(
    const PartitionSpace& space, RemovalKind removal,
    const std::function<std::vector<double>(const LoadVector&)>&
        placement_law) {
  core::SparseChain chain(space.size());
  for (std::size_t idx = 0; idx < space.size(); ++idx) {
    const LoadVector v = space.load_vector(idx);
    const std::vector<double> remove_pmf =
        removal == RemovalKind::kBallWeighted ? scenario_a_removal_pmf(v)
                                              : scenario_b_removal_pmf(v);
    for (std::size_t i = 0; i < v.bins(); ++i) {
      if (remove_pmf[i] <= 0.0) continue;
      LoadVector v_star = v;
      v_star.remove_at(i);
      const std::vector<double> place_pmf = placement_law(v_star);
      for (std::size_t j = 0; j < v.bins(); ++j) {
        if (place_pmf[j] <= 0.0) continue;
        LoadVector v_end = v_star;
        v_end.add_at(j);
        chain.add_transition(idx, space.index_of(v_end),
                             remove_pmf[i] * place_pmf[j]);
      }
    }
  }
  chain.finalize();
  return chain;
}

core::SparseChain build_exact_chain(const PartitionSpace& space,
                                    RemovalKind removal,
                                    const AbkuRule& rule) {
  const std::vector<double> place_pmf = rule.placement_pmf(space.n());
  return build_exact_chain_general(
      space, removal,
      [&place_pmf](const LoadVector&) { return place_pmf; });
}

}  // namespace recover::balls
