# Empty dependencies file for coupling_a_test.
# This may be replaced when dependencies are built.
