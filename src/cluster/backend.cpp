#include "src/cluster/backend.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace recover::cluster {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Remaining budget in whole milliseconds, clamped to [0, INT_MAX] for
/// poll(); at least 1 ms while any budget remains so a sub-millisecond
/// tail is not rounded into an instant timeout.
int remaining_ms(std::uint64_t deadline_ns) {
  const std::uint64_t now = now_ns();
  if (now >= deadline_ns) return 0;
  const std::uint64_t ns = deadline_ns - now;
  const std::uint64_t ms = ns / 1000000u;
  if (ms == 0) return 1;
  if (ms > 60000u) return 60000;
  return static_cast<int>(ms);
}

bool make_addr(const std::string& host, int port, sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Non-blocking connect bounded by `deadline_ns`; returns a blocking fd
/// or -1.
int connect_with_deadline(const sockaddr_in& addr,
                          std::uint64_t deadline_ns) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms(deadline_ns));
    if (ready <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  // Request/reply ping-pong over small frames: Nagle plus the peer's
  // delayed ACK would otherwise stall every forward by ~40 ms.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

Backend::Backend(BackendConfig config, BackendOptions options)
    : config_(std::move(config)),
      options_(options),
      id_(config_.id()),
      rtt_histogram_(obs::Registry::global().histogram(
          "cluster.backend." + id_ + ".rtt_ns")) {
  window_rtt_ = std::make_unique<ops::WindowedHistogram>(
      rtt_histogram_, options_.window_slots);
  window_requests_ = std::make_unique<ops::WindowedCounter>(
      [this] { return requests_total_.load(std::memory_order_relaxed); },
      options_.window_slots);
}

Backend::~Backend() { stop(); }

void Backend::start() {
  if (started_) return;
  started_ = true;
  if (config_.admin_port >= 0) {
    probe_thread_ = std::thread([this] { probe_loop(); });
  }
}

void Backend::stop() {
  if (probe_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(probe_mutex_);
      probe_stop_ = true;
    }
    probe_cv_.notify_all();
    probe_thread_.join();
  }
  std::lock_guard<std::mutex> lock(pool_mutex_);
  for (const int fd : idle_) ::close(fd);
  idle_.clear();
}

bool Backend::healthy() const {
  if (!admin_ready_.load(std::memory_order_relaxed)) return false;
  return now_ns() >= ejected_until_ns_.load(std::memory_order_relaxed);
}

Backend::Conn Backend::acquire(std::uint64_t deadline_ns) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!idle_.empty()) {
      const int fd = idle_.back();
      idle_.pop_back();
      return Conn{fd, true};
    }
  }
  return Conn{connect_fresh(deadline_ns), false};
}

void Backend::release(int fd) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (idle_.size() < options_.max_idle_connections) {
      idle_.push_back(fd);
      return;
    }
  }
  ::close(fd);
}

int Backend::connect_fresh(std::uint64_t deadline_ns) {
  sockaddr_in addr{};
  if (!make_addr(config_.host, config_.port, addr)) return -1;
  const std::uint64_t connect_deadline =
      now_ns() +
      static_cast<std::uint64_t>(options_.connect_timeout_ms) * 1000000u;
  return connect_with_deadline(
      addr, std::min(connect_deadline, deadline_ns));
}

Backend::CallStatus Backend::call(const std::string& request_line,
                                  std::uint64_t deadline_ns,
                                  std::string& reply_line) {
  const std::uint64_t start = now_ns();
  std::uint64_t effective =
      start + static_cast<std::uint64_t>(options_.call_timeout_ms) * 1000000u;
  if (deadline_ns != 0 && deadline_ns < effective) effective = deadline_ns;

  // One buffer, one send(): splitting the line and its newline across
  // two segments turns every forward into a write-write-read pattern.
  std::string wire;
  wire.reserve(request_line.size() + 1);
  wire = request_line;
  wire += '\n';

  Conn conn = acquire(effective);
  if (conn.fd < 0) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    eject("connect");
    return CallStatus::kConnect;
  }
  CallStatus status = call_once(conn, wire, effective, reply_line);
  if (status != CallStatus::kOk && status != CallStatus::kTimeout &&
      conn.pooled) {
    // The pooled connection may have gone stale while idle (backend
    // restart, peer timeout); one fresh connection disambiguates a dead
    // socket from a dead backend.
    conn = Conn{connect_fresh(effective), false};
    if (conn.fd < 0) {
      status = CallStatus::kConnect;
    } else {
      status = call_once(conn, wire, effective, reply_line);
    }
  }
  if (status != CallStatus::kOk) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    eject(status == CallStatus::kTimeout ? "timeout" : "transport");
    return status;
  }
  const std::uint64_t rtt = now_ns() - start;
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  rtt_histogram_.record(rtt);
  const std::uint64_t prev = rtt_ewma_ns_.load(std::memory_order_relaxed);
  rtt_ewma_ns_.store(prev == 0 ? rtt : (prev * 7 + rtt) / 8,
                     std::memory_order_relaxed);
  return CallStatus::kOk;
}

Backend::CallStatus Backend::call_once(Conn conn,
                                       const std::string& wire_line,
                                       std::uint64_t deadline_ns,
                                       std::string& reply_line) {
  // Bound the write the same way serve::Server bounds replies: a peer
  // that stops reading trips SO_SNDTIMEO instead of wedging the router.
  timeval tv{};
  const int budget_ms = remaining_ms(deadline_ns);
  tv.tv_sec = budget_ms / 1000;
  tv.tv_usec = (budget_ms % 1000) * 1000;
  ::setsockopt(conn.fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  if (!send_all(conn.fd, wire_line.data(), wire_line.size())) {
    ::close(conn.fd);
    return CallStatus::kSend;
  }

  reply_line.clear();
  char buf[8192];
  for (;;) {
    const int wait_ms = remaining_ms(deadline_ns);
    if (wait_ms == 0) {
      ::close(conn.fd);
      return CallStatus::kTimeout;
    }
    pollfd pfd{conn.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready == 0) {
      ::close(conn.fd);
      return CallStatus::kTimeout;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      ::close(conn.fd);
      return CallStatus::kRecv;
    }
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n == 0) {
      ::close(conn.fd);
      return CallStatus::kRecv;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(conn.fd);
      return CallStatus::kRecv;
    }
    const std::size_t before = reply_line.size();
    reply_line.append(buf, static_cast<std::size_t>(n));
    const std::size_t nl = reply_line.find('\n', before);
    if (nl == std::string::npos) continue;
    const bool clean = nl == reply_line.size() - 1;
    reply_line.resize(nl);
    if (!reply_line.empty() && reply_line.back() == '\r') {
      reply_line.pop_back();
    }
    if (clean) {
      release(conn.fd);
    } else {
      // Bytes after the newline mean framing we don't understand;
      // don't let them poison the next pooled request.
      ::close(conn.fd);
    }
    return CallStatus::kOk;
  }
}

void Backend::eject(const char* /*why*/) {
  const bool was_healthy = healthy();
  ejected_until_ns_.store(
      now_ns() +
          static_cast<std::uint64_t>(options_.eject_cooldown_ms) * 1000000u,
      std::memory_order_relaxed);
  if (was_healthy) {
    ejections_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Backend::tick() {
  window_rtt_->tick();
  window_requests_->tick();
}

Backend::Telemetry Backend::telemetry() const {
  Telemetry t;
  t.id = id_;
  t.healthy = healthy();
  t.requests = requests_total_.load(std::memory_order_relaxed);
  t.errors = errors_total_.load(std::memory_order_relaxed);
  t.ejections = ejections_total_.load(std::memory_order_relaxed);
  const auto qps = window_requests_->window();
  t.window_qps = qps.rate_per_sec();
  const auto rtt = window_rtt_->window();
  t.window_p50_us = rtt.merged.quantile(0.50) / 1000.0;
  t.window_p99_us = rtt.merged.quantile(0.99) / 1000.0;
  t.rtt_ms = static_cast<double>(
                 rtt_ewma_ns_.load(std::memory_order_relaxed)) /
             1e6;
  return t;
}

void Backend::probe_loop() {
  sockaddr_in addr{};
  const bool addr_ok = make_addr(config_.host, config_.admin_port, addr);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(probe_mutex_);
      probe_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.probe_interval_ms),
          [this] { return probe_stop_; });
      if (probe_stop_) return;
    }
    if (!addr_ok) continue;
    const std::uint64_t probe_deadline = now_ns() + 250u * 1000000u;
    bool ready = false;
    const int fd = connect_with_deadline(addr, probe_deadline);
    if (fd >= 0) {
      static constexpr char kRequest[] = "GET /readyz HTTP/1.0\r\n\r\n";
      if (send_all(fd, kRequest, sizeof kRequest - 1)) {
        std::string response;
        char buf[1024];
        for (;;) {
          pollfd pfd{fd, POLLIN, 0};
          if (::poll(&pfd, 1, remaining_ms(probe_deadline)) <= 0) break;
          const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
          if (n <= 0) break;
          response.append(buf, static_cast<std::size_t>(n));
        }
        ready = response.rfind("HTTP/1.0 200", 0) == 0;
      }
      ::close(fd);
    }
    const bool was_ready = admin_ready_.exchange(
        ready, std::memory_order_relaxed);
    if (was_ready && !ready) {
      ejections_total_.fetch_add(1, std::memory_order_relaxed);
    } else if (ready && !was_ready) {
      // A positive probe outranks any passive cooldown still pending.
      ejected_until_ns_.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace recover::cluster
