// Exact finite-state representation of the balls-into-bins chains.
//
// The normalized state space Ω_m (§3.1) is exactly the set of integer
// partitions of m into at most n parts.  For small (n, m) we enumerate it,
// build the exact transition law of I_A-ABKU[d] / I_B-ABKU[d] over it, and
// hand the sparse matrix to core::exact_mixing for ground-truth τ(ε).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/core/exact_mixing.hpp"

namespace recover::balls {

/// Enumerates Ω_m = partitions of m into ≤ n parts, with index lookup.
class PartitionSpace {
 public:
  PartitionSpace(std::size_t n, std::int64_t m);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::int64_t m() const { return m_; }
  [[nodiscard]] std::size_t size() const { return states_.size(); }

  [[nodiscard]] const std::vector<std::int64_t>& state(std::size_t i) const {
    return states_[i];
  }

  [[nodiscard]] LoadVector load_vector(std::size_t i) const;

  /// Index of a normalized load vector; aborts if not in the space.
  [[nodiscard]] std::size_t index_of(const LoadVector& v) const;

  /// Index of the balanced state / the all-in-one-bin crash state.
  [[nodiscard]] std::size_t balanced_index() const;
  [[nodiscard]] std::size_t all_in_one_index() const;

 private:
  std::size_t n_;
  std::int64_t m_;
  std::vector<std::vector<std::int64_t>> states_;  // non-increasing
  std::map<std::vector<std::int64_t>, std::size_t> index_;
};

enum class RemovalKind {
  kBallWeighted,      // scenario A: 𝒜(v) of Definition 3.2
  kNonEmptyUniform,   // scenario B: ℬ(v) of Definition 3.3
};

/// Exact transition matrix of one phase (remove, then ABKU[d] insert).
core::SparseChain build_exact_chain(const PartitionSpace& space,
                                    RemovalKind removal, const AbkuRule& rule);

/// General form: `placement_law(v*)` returns the exact pmf of the placed
/// sorted index given the post-removal state (state-dependent rules like
/// ADAP(x) use AdapRule::placement_pmf here).
core::SparseChain build_exact_chain_general(
    const PartitionSpace& space, RemovalKind removal,
    const std::function<std::vector<double>(const LoadVector&)>&
        placement_law);

}  // namespace recover::balls
