// Crash-recovery deep dive: the full recovery-time pipeline on one
// instance, narrated step by step.
//
//  1. Mitzenmacher fluid model  → what "recovered" means (typical band);
//  2. path coupling (measured)  → a predicted recovery horizon;
//  3. simulation from the crash → the observed trajectory and the
//     empirical tail profile converging onto the fluid fixed point.
//
//   ./crash_recovery --n 256 --scenario A --d 2
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "src/balls/coupling_a.hpp"
#include "src/balls/coupling_b.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/core/contraction.hpp"
#include "src/core/path_coupling.hpp"
#include "src/core/recovery.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/rng/engines.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("crash_recovery", "narrated recovery-time pipeline");
  cli.flag("n", "bins (= balls)", "256");
  cli.flag("scenario", "A or B", "A");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("seed", "rng seed", "1");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto m = static_cast<std::int64_t>(n);
  const bool scen_b = cli.str("scenario") == "B" || cli.str("scenario") == "b";
  const auto d = static_cast<int>(cli.integer("d"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const balls::AbkuRule rule(d);

  // -- 1. The typical state ------------------------------------------------
  fluid::FluidModel model(scen_b ? fluid::Scenario::kB : fluid::Scenario::kA,
                          d, 1.0, 24);
  const auto fixed = model.fixed_point();
  const auto typical = fluid::FluidModel::predicted_max_load(
      fixed, static_cast<double>(n));
  std::printf("1. fluid model: stationary tail s_i = ");
  for (std::size_t i = 0; i < 6; ++i) std::printf("%.3g ", fixed[i]);
  std::printf("...\n   => typical max load %lld for n=%zu\n\n",
              static_cast<long long>(typical), n);

  // -- 2. Path coupling, with measured parameters --------------------------
  const auto est = core::estimate_contraction(
      [&](int p, rng::Xoshiro256PlusPlus& eng) {
        return balls::random_gamma_pair(n, m, eng, 1 + p % 3);
      },
      [&](std::pair<balls::LoadVector, balls::LoadVector>& pr,
          rng::Xoshiro256PlusPlus& eng) {
        return scen_b ? balls::coupled_step_b(pr.first, pr.second, rule, eng)
                      : balls::coupled_step_a(pr.first, pr.second, rule, eng);
      },
      6, 3000, seed);
  double horizon;
  if (!scen_b && est.beta_hat < 1.0) {
    horizon = core::path_coupling_bound_contractive(
        est.beta_hat, static_cast<double>(m), 0.25);
    std::printf(
        "2. path coupling: measured beta = %.4f (theory 1-1/m = %.4f)\n"
        "   => Lemma 3.1(1) horizon %.0f steps (Theorem 1 bound: %.0f)\n\n",
        est.beta_hat, 1.0 - 1.0 / static_cast<double>(m), horizon,
        core::theorem1_bound(m, 0.25));
  } else {
    horizon = core::path_coupling_bound_martingale(
        std::max(est.alpha_hat, 1e-9), static_cast<double>(m), 0.25);
    std::printf(
        "2. path coupling: measured alpha = %.4f (theory >= 1/n = %.4f)\n"
        "   => Lemma 3.1(2) horizon %.0f steps (Claim 5.3 bound: %.0f)\n\n",
        est.alpha_hat, 1.0 / static_cast<double>(n), horizon,
        core::claim53_bound(n, m, 0.25));
  }

  // -- 3. The crash and the observed recovery ------------------------------
  rng::Xoshiro256PlusPlus eng(seed + 99);
  util::Table table({"step", "max load", "tail s_1", "s_2", "s_3"});
  auto report = [&](std::int64_t t, const balls::LoadVector& v) {
    const auto s = fluid::tail_fractions(v.loads(), 4);
    table.row()
        .integer(t)
        .integer(v.max_load())
        .num(s[0], 3)
        .num(s[1], 3)
        .num(s[2], 3);
  };
  const std::int64_t budget =
      scen_b ? static_cast<std::int64_t>(
                   40.0 * static_cast<double>(m) * static_cast<double>(m))
             : 8 * static_cast<std::int64_t>(core::theorem1_bound(m, 0.25));
  std::int64_t recovered_at = -1;
  if (scen_b) {
    balls::ScenarioBChain<balls::AbkuRule> chain(
        balls::LoadVector::all_in_one(n, m), rule);
    for (std::int64_t t = 1; t <= budget; ++t) {
      chain.step(eng);
      if ((t & (t - 1)) == 0) report(t, chain.state());
      if (recovered_at < 0 && chain.state().max_load() <= typical + 1) {
        recovered_at = t;
      }
    }
  } else {
    balls::ScenarioAChain<balls::AbkuRule> chain(
        balls::LoadVector::all_in_one(n, m), rule);
    for (std::int64_t t = 1; t <= budget; ++t) {
      chain.step(eng);
      if ((t & (t - 1)) == 0) report(t, chain.state());
      if (recovered_at < 0 && chain.state().max_load() <= typical + 1) {
        recovered_at = t;
      }
    }
  }
  std::printf("3. crash = all %lld balls in one bin; trajectory:\n",
              static_cast<long long>(m));
  table.print(std::cout);
  std::printf(
      "\n   first hit of the typical band at step %lld (predicted horizon "
      "%.0f).\n",
      static_cast<long long>(recovered_at), horizon);
  return 0;
}
