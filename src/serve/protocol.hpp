// Wire protocol for the recover::serve TCP service: newline-delimited
// JSON frames, one request or response per line (docs/SERVING.md).
//
// Request (`recover.req/1`):
//
//   {"schema":"recover.req/1","id":1,"method":"run_cell",
//    "params":{...},"deadline_ms":2000}
//
// `id` (number or string) is echoed verbatim in the reply so clients can
// pipeline; `params` and `deadline_ms` are optional.  `deadline_ms` is a
// per-request budget relative to arrival: 0 means "already expired" (a
// cheap way to exercise the cancellation path), absence means the
// server's default applies.
//
// Response (`recover.resp/1`), always a single line:
//
//   {"schema":"recover.resp/1","id":1,"ok":true,"result":{...}}
//   {"schema":"recover.resp/1","id":1,"ok":false,
//    "error":{"code":"overloaded","message":"..."}}
//
// The error taxonomy is closed: parse_error, unknown_method,
// invalid_params, overloaded, deadline_exceeded, shutting_down.  Framing
// is torn-input tolerant — a half-written trailing line is ignored at
// EOF, an over-long line is answered with parse_error and discarded up
// to the next newline, and the connection stays usable afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/json_reader.hpp"

namespace recover::serve {

inline constexpr std::string_view kRequestSchema = "recover.req/1";
inline constexpr std::string_view kResponseSchema = "recover.resp/1";

/// Framing cap: a request line longer than this is a protocol error
/// (bounded memory per connection, no matter what the peer sends).
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Largest accepted deadline_ms (one day).  A bound is required for
/// safety, not just sanity: the double→int64 cast on an unbounded value
/// is undefined behavior, and the server's ms→ns conversion would wrap
/// for values near 2^64, turning a huge requested deadline into one
/// that already expired.
inline constexpr std::int64_t kMaxDeadlineMs = 86'400'000;

enum class ErrorCode {
  kParseError,        // not JSON / not a recover.req/1 / bad field types
  kUnknownMethod,     // method not registered
  kInvalidParams,     // method known, params unusable
  kOverloaded,        // admission queue full — request was shed
  kDeadlineExceeded,  // deadline passed before or during execution
  kShuttingDown,      // server is draining; no new work accepted
};

/// Stable wire name, e.g. "parse_error" (docs/SERVING.md taxonomy).
std::string_view error_code_name(ErrorCode code);

struct Request {
  /// The id as a raw JSON token ("42" or "\"abc\""), echoed verbatim into
  /// the response; "null" when the request never parsed far enough.
  std::string id = "null";
  std::string method;
  obs::JsonValue params;          // kObject (possibly empty)
  std::int64_t deadline_ms = -1;  // relative budget; -1 = not given
};

struct ParseOutcome {
  bool ok = false;
  ErrorCode code = ErrorCode::kParseError;
  std::string message;
};

/// Parses one request line.  On failure `out.id` still carries the id
/// token when one was recoverable, so the error reply can be correlated.
ParseOutcome parse_request(const std::string& line, Request& out);

/// Single-line responses (no trailing newline).  `result_json` must be a
/// complete compact JSON value (the handlers build objects with
/// obs::json_escape / obs::json_number, which keeps replies
/// byte-deterministic).
std::string make_result(std::string_view id_token,
                        std::string_view result_json);
std::string make_error(std::string_view id_token, ErrorCode code,
                       std::string_view message);

/// Extracts the raw `result` bytes of an ok response line produced by
/// make_result — the exact bytes between `"result":` and the final
/// closing brace.  False when the line is not an ok recover.resp/1.
/// The cluster router caches and re-wraps these bytes verbatim;
/// extraction (never reparse-and-reserialize) is what keeps a cached or
/// proxied reply byte-identical to a fresh backend's.
bool extract_result(const std::string& line, std::string& result_json);

/// Incremental newline framer with a line-length cap.  Feed raw bytes as
/// they arrive; complete lines come out one at a time.  A line that
/// exceeds the cap is reported once as kOversized and its remainder is
/// silently discarded up to the next newline; bytes after that flow
/// normally.  A trailing fragment with no newline is never surfaced —
/// torn input at connection close is dropped, matching the checkpoint
/// loader's torn-line policy.
class LineReader {
 public:
  explicit LineReader(std::size_t max_line_bytes = kMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  void feed(const char* data, std::size_t size);

  enum class Next { kLine, kNeedMore, kOversized };

  /// Extracts the next complete line (CR stripped) into `out`, or
  /// reports that the pending line overflowed the cap (once per
  /// oversized line), or that more bytes are needed.
  Next next_line(std::string& out);

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool discarding_ = false;  // inside an oversized line, seeking '\n'
  bool oversize_reported_ = false;
};

}  // namespace recover::serve
