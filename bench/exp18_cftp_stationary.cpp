// Experiment E18 — perfect stationary sampling via coupling from the
// past (Propp–Wilson on the majorization sandwich).
//
// Part 1 (validation): on small partition spaces, the TV distance
// between the CFTP output distribution and the exactly computed π must
// sit at the sampling-noise floor.
// Part 2 (application): at sizes where the matrix no longer fits, CFTP
// draws unbiased stationary max-load samples — no burn-in guesswork —
// and the table compares them against the long-run estimate used by
// exp10 and the fluid prediction.  The CFTP backward window itself is
// yet another recovery-time estimate: its median tracks m ln m.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/exact_chain.hpp"
#include "src/balls/grand_coupling.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/core/cftp.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/kernel/kernel.hpp"
#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp18_cftp_stationary",
                "E18: exact stationary sampling via CFTP");
  cli.flag("validate_samples", "CFTP draws for the small-space check",
           "20000");
  cli.flag("sizes", "n = m sweep for the application part", "32,64,128,256");
  cli.flag("samples", "CFTP draws per application point", "200");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("seed", "rng seed", "18");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto kval = static_cast<int>(cli.integer("validate_samples"));
  const auto sizes = cli.int_list("sizes");
  const auto samples = static_cast<int>(cli.integer("samples"));
  const auto d = static_cast<int>(cli.integer("d"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  // ---- Part 1: validation against exact pi -----------------------------
  {
    const std::size_t n = 4;
    const std::int64_t m = 6;
    balls::PartitionSpace space(n, m);
    const auto chain = balls::build_exact_chain(
        space, balls::RemovalKind::kBallWeighted, balls::AbkuRule(d));
    const auto pi = core::stationary_distribution(chain);
    stats::IntHistogram hist;
    for (int s = 0; s < kval; ++s) {
      core::CftpOptions opts;
      opts.seed = rng::derive_stream_seed(seed, static_cast<std::uint64_t>(s));
      const auto sample = core::cftp_sample(
          [&]() {
            return balls::GrandCouplingA<balls::AbkuRule>(
                balls::LoadVector::all_in_one(n, m),
                balls::LoadVector::balanced(n, m), balls::AbkuRule(d));
          },
          opts);
      hist.add(static_cast<std::int64_t>(space.index_of(*sample)));
    }
    double tv = 0;
    for (std::size_t i = 0; i < space.size(); ++i) {
      tv += std::abs(hist.frequency(static_cast<std::int64_t>(i)) - pi[i]);
    }
    tv /= 2;
    std::printf(
        "validation (n=%zu, m=%lld, |Omega|=%zu, %d draws): "
        "TV(CFTP, exact pi) = %.4f (noise floor ~%.4f)\n\n",
        n, static_cast<long long>(m), space.size(), kval, tv,
        std::sqrt(static_cast<double>(space.size()) / kval) / 2);
    run.note("validation_tv", tv);
    run.note("validation_noise_floor",
             std::sqrt(static_cast<double>(space.size()) / kval) / 2);
  }

  // ---- Part 2: perfect stationary max-load samples ---------------------
  util::Table table({"n=m", "E[maxload] CFTP", "p95", "E[maxload] long-run",
                     "fluid", "median backward window", "secs"});
  for (const std::int64_t m : sizes) {
    const auto n = static_cast<std::size_t>(m);
    util::Timer timer;
    stats::IntHistogram maxload;
    stats::IntHistogram window_used;
    for (int s = 0; s < samples; ++s) {
      core::CftpOptions opts;
      opts.seed = rng::derive_stream_seed(
          seed + 1, static_cast<std::uint64_t>(m) * 100000 +
                        static_cast<std::uint64_t>(s));
      // Track the window by re-deriving it: cftp doubles until success.
      std::int64_t window = 1;
      std::optional<balls::LoadVector> sample;
      for (; window <= (1 << 26); window *= 2) {
        balls::GrandCouplingA<balls::AbkuRule> c(
            balls::LoadVector::all_in_one(n, m),
            balls::LoadVector::balanced(n, m), balls::AbkuRule(d));
        for (std::int64_t t = window; t >= 1; --t) {
          rng::Xoshiro256PlusPlus eng(rng::derive_stream_seed(
              opts.seed, static_cast<std::uint64_t>(t)));
          c.step(eng);
        }
        if (c.coalesced()) {
          sample = c.first();
          break;
        }
      }
      maxload.add(sample->max_load());
      window_used.add(window);
    }
    // Long-run comparison (the exp10 estimator).
    rng::Xoshiro256PlusPlus eng(seed + 2);
    balls::ScenarioAChain<balls::AbkuRule> chain(
        balls::LoadVector::balanced(n, m), balls::AbkuRule(d));
    kernel::advance(chain, eng, 50 * m);
    stats::IntHistogram longrun;
    for (int s2 = 0; s2 < 300; ++s2) {
      kernel::advance(chain, eng, m / 2 + 1);
      longrun.add(chain.state().max_load());
    }
    fluid::FluidModel model(fluid::Scenario::kA, d, 1.0, 24);
    const auto fluid_pred = fluid::FluidModel::predicted_max_load(
        model.fixed_point(), static_cast<double>(m));
    table.row()
        .integer(m)
        .num(maxload.mean(), 3)
        .integer(maxload.quantile(0.95))
        .num(longrun.mean(), 3)
        .integer(fluid_pred)
        .integer(window_used.quantile(0.5))
        .num(timer.seconds(), 2);
  }
  table.print(std::cout);
  run.add_table("cftp_maxload", table);
  std::printf(
      "\n# CFTP draws need no burn-in heuristics; agreement with the "
      "long-run column certifies exp10's estimator, and the backward "
      "window column is one more view of the Theorem 1 recovery time "
      "(doubling rounds up m ln m).\n");
  return 0;
}
