// Built-in SweepCell bodies: the per-grid-point cores of exp01, exp03,
// exp06, and exp10, extracted from their bench binaries so the sweep
// engine, the binaries, and checkpoint resume all execute the same code.
//
// Grid parameter conventions shared by the balls cells: `m` is the ball
// count, `density` is balls per bin (n = max(2, m/density) for exp01;
// m = density*n for exp03), `d` the number of ABKU choices, `replicas`
// the coupling replica count.
#include <algorithm>
#include <cmath>
#include <vector>

#include "src/balls/grand_coupling.hpp"
#include "src/balls/rbb.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/core/coalescence.hpp"
#include "src/core/path_coupling.hpp"
#include "src/core/recovery.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/kernel/kernel.hpp"
#include "src/orient/chain.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/autocorr.hpp"
#include "src/stats/histogram.hpp"
#include "src/sweep/registry.hpp"

namespace recover::sweep {
namespace {

core::CoalescenceOptions cell_coalescence_options(const CellContext& ctx,
                                                  int replicas,
                                                  std::int64_t max_steps,
                                                  std::int64_t check_interval) {
  core::CoalescenceOptions opts;
  opts.replicas = replicas;
  opts.seed = ctx.seed;
  opts.max_steps = max_steps;
  opts.check_interval = check_interval;
  opts.parallel = ctx.parallel_within_cell;
  opts.cancelled = ctx.cancelled;
  return opts;
}

// E1 / Theorem 1: coalescence of the scenario-A grand coupling from the
// extremal pair, one (m, d) point.
CellResult exp01_cell(const Cell& cell, const CellContext& ctx) {
  const std::int64_t m = cell.at("m");
  const auto d = static_cast<int>(cell.at("d"));
  const std::int64_t density = cell.get("density", 1);
  const auto replicas = static_cast<int>(cell.get("replicas", 8));
  const auto n =
      static_cast<std::size_t>(std::max<std::int64_t>(2, m / density));
  const auto opts = cell_coalescence_options(
      ctx, replicas,
      200 * m *
          (1 + static_cast<std::int64_t>(std::log(static_cast<double>(m)))),
      std::max<std::int64_t>(1, m / 8));
  const auto stats = core::measure_coalescence(
      [&](std::uint64_t) {
        return balls::GrandCouplingA<balls::AbkuRule>(
            balls::LoadVector::all_in_one(n, m),
            balls::LoadVector::balanced(n, m), balls::AbkuRule(d));
      },
      opts);
  const double mlnm =
      static_cast<double>(m) * std::log(static_cast<double>(m));
  CellResult out;
  out.set("T_mean", stats.steps.mean());
  out.set("T_ci95", stats.steps.ci_halfwidth());
  out.set("T_q50", stats.q50);
  out.set("T_q95", stats.q95);
  out.set("censored", static_cast<double>(stats.censored));
  out.set("ratio_mlnm", stats.steps.mean() / mlnm);
  out.set("thm1_bound", core::theorem1_bound(m, 0.25));
  return out;
}

// E3 / Claim 5.3: coalescence of the scenario-B grand coupling, one
// (n, density, d) point with m = density * n.
CellResult exp03_cell(const Cell& cell, const CellContext& ctx) {
  const std::int64_t n = cell.at("n");
  const std::int64_t density = cell.get("density", 1);
  const auto d = static_cast<int>(cell.get("d", 2));
  const auto replicas = static_cast<int>(cell.get("replicas", 8));
  const std::int64_t m = density * n;
  const auto opts = cell_coalescence_options(
      ctx, replicas, 2000 * m * m, std::max<std::int64_t>(1, m * m / 64));
  const auto stats = core::measure_coalescence(
      [&](std::uint64_t) {
        return balls::GrandCouplingB<balls::AbkuRule>(
            balls::LoadVector::all_in_one(static_cast<std::size_t>(n), m),
            balls::LoadVector::balanced(static_cast<std::size_t>(n), m),
            balls::AbkuRule(d));
      },
      opts);
  const double m2 = static_cast<double>(m) * static_cast<double>(m);
  CellResult out;
  out.set("T_mean", stats.steps.mean());
  out.set("T_ci95", stats.steps.ci_halfwidth());
  out.set("T_q50", stats.q50);
  out.set("T_q95", stats.q95);
  out.set("censored", static_cast<double>(stats.censored));
  out.set("T_m2", stats.steps.mean() / m2);
  out.set("T_nm",
          stats.steps.mean() /
              (static_cast<double>(n) * static_cast<double>(m)));
  out.set("claim53_bound",
          core::claim53_bound(static_cast<std::size_t>(n), m, 0.25));
  return out;
}

// E6 / Theorem 2: orientation-chain coalescence from the spread and
// staircase adversarial starts, one n point.  Both starts share ctx.seed
// (hence replica streams), as the original binary did.
CellResult exp06_cell(const Cell& cell, const CellContext& ctx) {
  const std::int64_t n = cell.at("n");
  const auto replicas = static_cast<int>(cell.get("replicas", 8));
  const auto ns = static_cast<std::size_t>(n);
  const double nd = static_cast<double>(n);
  const auto opts = cell_coalescence_options(
      ctx, replicas,
      static_cast<std::int64_t>(500.0 * nd * nd * std::log(nd) *
                                std::log(nd)),
      std::max<std::int64_t>(1, n * n / 16));
  const auto stats = core::measure_coalescence(
      [&](std::uint64_t) {
        return orient::GrandCouplingOrient(orient::DiffState::spread(ns, n / 2),
                                           orient::DiffState(ns));
      },
      opts);
  const auto stats_stair = core::measure_coalescence(
      [&](std::uint64_t) {
        return orient::GrandCouplingOrient(
            orient::DiffState::staircase(ns, n / 2), orient::DiffState(ns));
      },
      opts);
  CellResult out;
  out.set("T_mean", stats.steps.mean());
  out.set("T_ci95", stats.steps.ci_halfwidth());
  out.set("T_q50", stats.q50);
  out.set("T_q95", stats.q95);
  out.set("censored", static_cast<double>(stats.censored));
  out.set("T_stair_mean", stats_stair.steps.mean());
  out.set("cor64_bound", core::corollary64_bound(ns, 0.25));
  return out;
}

struct StationaryEstimate {
  double mean_max_load = 0;
  double ess = 0;  // effective sample size of the spaced series
};

template <typename Chain>
StationaryEstimate stationary_mean_max_load(Chain& chain, std::int64_t burn_in,
                                            std::int64_t samples,
                                            std::int64_t spacing,
                                            rng::Xoshiro256PlusPlus& eng,
                                            const CellContext& ctx) {
  // Cancellation polls sit on sample boundaries (and every 4096 burn-in
  // steps): cheap relative to a chain step, and a cancelled cell's
  // truncated estimate is discarded by the caller anyway.
  for (std::int64_t t = 0; t < burn_in; t += 4096) {
    if (ctx.cancelled && ctx.cancelled()) break;
    kernel::advance(chain, eng, std::min<std::int64_t>(4096, burn_in - t));
  }
  stats::IntHistogram hist;
  std::vector<double> series;
  series.reserve(static_cast<std::size_t>(samples));
  for (std::int64_t s = 0; s < samples; ++s) {
    if (ctx.cancelled && ctx.cancelled()) break;
    kernel::advance(chain, eng, spacing);
    hist.add(chain.state().max_load());
    series.push_back(static_cast<double>(chain.state().max_load()));
  }
  if (series.empty()) {  // cancelled before the first sample
    return StationaryEstimate{};
  }
  StationaryEstimate out;
  out.mean_max_load = hist.mean();
  // A constant series (common at small n, d >= 2) has zero variance;
  // every sample is then trivially independent.
  bool varies = false;
  for (const double v : series) {
    if (v != series.front()) {
      varies = true;
      break;
    }
  }
  out.ess = varies ? stats::effective_sample_size(series)
                   : static_cast<double>(samples);
  return out;
}

// E10: stationary max load of both scenarios vs the Azar-et-al. laws and
// the fluid fixed point, one (n, d) point (m = n).
CellResult exp10_cell(const Cell& cell, const CellContext& ctx) {
  const std::int64_t n = cell.at("n");
  const auto d = static_cast<int>(cell.at("d"));
  const std::int64_t samples = cell.get("samples", 300);
  const auto ns = static_cast<std::size_t>(n);
  const double nd = static_cast<double>(n);
  rng::Xoshiro256PlusPlus eng(ctx.seed);
  const std::int64_t burn_in = 40 * n;
  const std::int64_t spacing = std::max<std::int64_t>(1, n / 4);

  balls::ScenarioAChain<balls::AbkuRule> ca(balls::LoadVector::balanced(ns, n),
                                            balls::AbkuRule(d));
  const auto est_a = stationary_mean_max_load(ca, burn_in, samples, spacing,
                                              eng, ctx);
  balls::ScenarioBChain<balls::AbkuRule> cb(balls::LoadVector::balanced(ns, n),
                                            balls::AbkuRule(d));
  const auto est_b = stationary_mean_max_load(cb, burn_in, samples, spacing,
                                              eng, ctx);

  fluid::FluidModel fa(fluid::Scenario::kA, d, 1.0, 40);
  fluid::FluidModel fb(fluid::Scenario::kB, d, 1.0, 40);

  CellResult out;
  out.set("maxload_A", est_a.mean_max_load);
  out.set("maxload_B", est_b.mean_max_load);
  out.set("fluid_A", static_cast<double>(fluid::FluidModel::predicted_max_load(
                         fa.fixed_point(), nd)));
  out.set("fluid_B", static_cast<double>(fluid::FluidModel::predicted_max_load(
                         fb.fixed_point(), nd)));
  out.set("law_one_choice", std::log(nd) / std::log(std::log(nd)));
  out.set("law_d_choice",
          d >= 2 ? std::log(std::log(nd)) / std::log(static_cast<double>(d))
                 : 0.0);
  out.set("ess_A", est_a.ess);
  return out;
}

// E22 / Cancrini–Posta: coalescence of the RBB grand coupling from the
// extremal pair, one (n, density, d) point with m = density * n.  The
// headline claim is O(n log n) mixing for m = O(n), so the scaling
// column is T / (n ln n).
CellResult exp22_cell(const Cell& cell, const CellContext& ctx) {
  const std::int64_t n = cell.at("n");
  const std::int64_t density = cell.get("density", 2);
  const auto d = static_cast<int>(cell.get("d", 1));
  const auto replicas = static_cast<int>(cell.get("replicas", 8));
  const std::int64_t m = density * n;
  const auto ns = static_cast<std::size_t>(n);
  const double nd = static_cast<double>(n);
  const double nlnn = nd * std::log(nd);
  // Rounds, not placements: a round costs Θ(n) placements, and the
  // coupling needs O(n log n) rounds plus headroom for small n.
  const auto opts = cell_coalescence_options(
      ctx, replicas,
      static_cast<std::int64_t>(400.0 * (nlnn + nd)),
      std::max<std::int64_t>(1, n / 8));
  const auto stats = core::measure_coalescence(
      [&](std::uint64_t) {
        return balls::GrandCouplingRBB<balls::AbkuRule>(
            balls::LoadVector::all_in_one(ns, m),
            balls::LoadVector::balanced(ns, m), balls::AbkuRule(d));
      },
      opts);
  CellResult out;
  out.set("T_mean", stats.steps.mean());
  out.set("T_ci95", stats.steps.ci_halfwidth());
  out.set("T_q50", stats.q50);
  out.set("T_q95", stats.q95);
  out.set("censored", static_cast<double>(stats.censored));
  out.set("ratio_nlnn", stats.steps.mean() / nlnn);
  return out;
}

// E23 / Los–Sauerwald: self-stabilization of RBB from the worst-case
// concentrated start.  The typical max-load band is measured on a
// burned-in balanced-start copy (Θ(log n) for m = Θ(n)); recovery is the
// first sustained entry of the crashed copy's max load into that band.
CellResult exp23_cell(const Cell& cell, const CellContext& ctx) {
  const std::int64_t n = cell.at("n");
  const std::int64_t density = cell.get("density", 2);
  const auto d = static_cast<int>(cell.get("d", 1));
  const auto replicas = static_cast<int>(cell.get("replicas", 8));
  const std::int64_t m = density * n;
  const auto ns = static_cast<std::size_t>(n);
  const double nd = static_cast<double>(n);
  const double nlnn = nd * std::log(nd);

  // Typical band: burn a balanced-start chain past the O(n log n) mixing
  // horizon, then take the max of spaced stationary max-load samples —
  // an empirical upper edge of the typical band, + 1 of slack.
  balls::RBBChain<balls::AbkuRule> stationary(
      balls::LoadVector::balanced(ns, m), balls::AbkuRule(d));
  rng::Xoshiro256PlusPlus eng(ctx.seed);
  const auto burn_in = static_cast<std::int64_t>(4.0 * (nlnn + nd));
  const std::int64_t spacing = std::max<std::int64_t>(1, n / 8);
  kernel::advance(stationary, eng, burn_in);
  std::int64_t typical = stationary.state().max_load();
  for (int sample = 0; sample < 48; ++sample) {
    if (ctx.cancelled && ctx.cancelled()) break;
    kernel::advance(stationary, eng, spacing);
    typical = std::max(typical, stationary.state().max_load());
  }

  core::TrajectoryOptions opts;
  opts.sample_interval = spacing;
  // Draining the worst-case pile takes Θ(m) rounds before mixing even
  // starts, so the horizon covers both terms with headroom.
  opts.max_steps = static_cast<std::int64_t>(
      100.0 * (static_cast<double>(m) + nlnn));
  const auto stats = core::measure_recovery(
      [&](int) {
        return balls::RBBChain<balls::AbkuRule>(
            balls::LoadVector::all_in_one(ns, m), balls::AbkuRule(d));
      },
      [](const auto& chain) {
        return static_cast<double>(chain.state().max_load());
      },
      0.0, static_cast<double>(typical + 1), /*window=*/8, replicas, opts,
      rng::substream(ctx.seed, 0xEBB));
  CellResult out;
  out.set("typical", static_cast<double>(typical));
  out.set("typical_per_lnn", static_cast<double>(typical) / std::log(nd));
  out.set("T_mean", stats.hitting_steps.mean());
  out.set("T_ci95", stats.hitting_steps.ci_halfwidth());
  out.set("censored", static_cast<double>(stats.censored));
  out.set("T_nlnn", stats.hitting_steps.mean() / nlnn);
  out.set("T_m", stats.hitting_steps.mean() / static_cast<double>(m));
  return out;
}

}  // namespace

namespace detail {

void register_builtin(Registry& registry) {
  registry.add(Experiment{
      "exp01",
      "Theorem 1: scenario-A grand-coupling coalescence vs m ln m",
      "d=1..3;m=32..512:x2;density=1;replicas=8",
      {"T_mean", "T_ci95", "T_q50", "T_q95", "censored", "ratio_mlnm",
       "thm1_bound"},
      exp01_cell,
      {"m", "d"}});
  registry.add(Experiment{
      "exp03",
      "Claim 5.3: scenario-B grand-coupling coalescence vs m^2 laws",
      "density=1,2;n=8..48:x2;d=2;replicas=8",
      {"T_mean", "T_ci95", "T_q50", "T_q95", "censored", "T_m2", "T_nm",
       "claim53_bound"},
      exp03_cell,
      {"n"}});
  registry.add(Experiment{
      "exp06",
      "Theorem 2: orientation-chain coalescence vs n^2 polylog laws",
      "n=8..64:x2;replicas=8",
      {"T_mean", "T_ci95", "T_q50", "T_q95", "censored", "T_stair_mean",
       "cor64_bound"},
      exp06_cell,
      {"n"}});
  registry.add(Experiment{
      "exp10",
      "Stationary max load of ABKU[d] vs lnln(n)/ln(d) and fluid model",
      "d=1..3;n=64..1024:x4;samples=300",
      {"maxload_A", "maxload_B", "fluid_A", "fluid_B", "law_one_choice",
       "law_d_choice", "ess_A"},
      exp10_cell,
      {"n", "d"}});
  registry.add(Experiment{
      "exp22",
      "Cancrini-Posta: RBB grand-coupling coalescence vs n ln n",
      "d=1;n=16..128:x2;density=2;replicas=8",
      {"T_mean", "T_ci95", "T_q50", "T_q95", "censored", "ratio_nlnn"},
      exp22_cell,
      {"n"}});
  registry.add(Experiment{
      "exp23",
      "Los-Sauerwald: RBB self-stabilization from the worst-case start",
      "d=1;n=16..128:x2;density=2;replicas=8",
      {"typical", "typical_per_lnn", "T_mean", "T_ci95", "censored", "T_nlnn",
       "T_m"},
      exp23_cell,
      {"n"}});
}

}  // namespace detail
}  // namespace recover::sweep
