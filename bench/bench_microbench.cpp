// Engineering microbenchmarks (google-benchmark): per-step costs and the
// ablations called out in DESIGN.md.
//
//  * Fenwick vs linear prefix-scan sampling of 𝒜(v) (ablation #1);
//  * normalized ⊕/⊖ operations (Fact 3.2 binary-search updates);
//  * full phase cost of I_A / I_B with d ∈ {1, 2, 4};
//  * ADAP(x) placement (sequential probing);
//  * lazy greedy orientation step (ablation #3 is measured in exp06 by
//    doubling; here we report the raw step cost);
//  * grand-coupling step (two copies + shared probes).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/balls/grand_coupling.hpp"
#include "src/balls/labeled.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/removal_policies.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/core/cftp.hpp"
#include "src/kernel/choice_block.hpp"
#include "src/kernel/kernel.hpp"
#include "src/obs/run_record.hpp"
#include "src/obs/trace.hpp"
#include "src/obs/trace_buffer.hpp"
#include "src/orient/coupling.hpp"
#include "src/orient/state.hpp"
#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

using recover::balls::AbkuRule;
using recover::balls::AdapRule;
using recover::balls::LoadVector;
using recover::balls::ThresholdSchedule;
using recover::rng::Xoshiro256PlusPlus;

void BM_SampleBallWeightedFenwick(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256PlusPlus eng(1);
  const LoadVector v =
      recover::balls::random_load_vector(n, static_cast<std::int64_t>(4 * n),
                                         eng, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.sample_ball_weighted(eng));
  }
}
BENCHMARK(BM_SampleBallWeightedFenwick)->Range(64, 16384);

void BM_SampleBallWeightedLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256PlusPlus eng(1);
  const LoadVector v =
      recover::balls::random_load_vector(n, static_cast<std::int64_t>(4 * n),
                                         eng, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.sample_ball_weighted_linear(eng));
  }
}
BENCHMARK(BM_SampleBallWeightedLinear)->Range(64, 16384);

void BM_AddRemoveRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256PlusPlus eng(2);
  LoadVector v =
      recover::balls::random_load_vector(n, static_cast<std::int64_t>(2 * n),
                                         eng, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t bin = i++ % n;
    // add_at may normalize to the run head; remove the ball that was
    // actually placed so the state (and ball count) is preserved.
    const std::size_t placed = v.add_at(bin);
    v.remove_at(placed);
    benchmark::DoNotOptimize(v.load(placed));
  }
}
BENCHMARK(BM_AddRemoveRoundTrip)->Range(64, 16384);

void BM_ScenarioAStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<int>(state.range(1));
  Xoshiro256PlusPlus eng(3);
  recover::balls::ScenarioAChain<AbkuRule> chain(
      LoadVector::balanced(n, static_cast<std::int64_t>(n)), AbkuRule(d));
  for (auto _ : state) {
    chain.step(eng);
  }
  benchmark::DoNotOptimize(chain.state().max_load());
}
BENCHMARK(BM_ScenarioAStep)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({16384, 2});

void BM_ScenarioBStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<int>(state.range(1));
  Xoshiro256PlusPlus eng(4);
  recover::balls::ScenarioBChain<AbkuRule> chain(
      LoadVector::balanced(n, static_cast<std::int64_t>(n)), AbkuRule(d));
  for (auto _ : state) {
    chain.step(eng);
  }
  benchmark::DoNotOptimize(chain.state().max_load());
}
BENCHMARK(BM_ScenarioBStep)->Args({1024, 2})->Args({16384, 2});

void BM_ScenarioAAdapStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256PlusPlus eng(5);
  recover::balls::ScenarioAChain<AdapRule> chain(
      LoadVector::balanced(n, static_cast<std::int64_t>(n)),
      AdapRule{ThresholdSchedule::linear(1, 1, 5)});
  for (auto _ : state) {
    chain.step(eng);
  }
  benchmark::DoNotOptimize(chain.state().max_load());
}
BENCHMARK(BM_ScenarioAAdapStep)->Arg(1024)->Arg(16384);

void BM_GrandCouplingAStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256PlusPlus eng(6);
  recover::balls::GrandCouplingA<AbkuRule> coupling(
      LoadVector::all_in_one(n, static_cast<std::int64_t>(n)),
      LoadVector::balanced(n, static_cast<std::int64_t>(n)), AbkuRule(2));
  for (auto _ : state) {
    coupling.step(eng);
  }
  benchmark::DoNotOptimize(coupling.distance());
}
BENCHMARK(BM_GrandCouplingAStep)->Arg(1024)->Arg(16384);

void BM_OrientationStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256PlusPlus eng(7);
  recover::orient::DiffState s =
      recover::orient::DiffState::spread(n, static_cast<std::int64_t>(n / 2));
  for (auto _ : state) {
    s.step(eng);
  }
  benchmark::DoNotOptimize(s.unfairness());
}
BENCHMARK(BM_OrientationStep)->Arg(1024)->Arg(16384);

void BM_RemovalPolicyStep(benchmark::State& state) {
  // Fullest-of-d removal + ABKU[2] insertion (the exp15 active drain).
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256PlusPlus eng(8);
  recover::balls::GeneralChain<recover::balls::MaxOfDNonEmptyRemoval<2>,
                               AbkuRule>
      chain(LoadVector::balanced(n, static_cast<std::int64_t>(n)),
            recover::balls::MaxOfDNonEmptyRemoval<2>{}, AbkuRule(2));
  for (auto _ : state) {
    chain.step(eng);
  }
  benchmark::DoNotOptimize(chain.state().max_load());
}
BENCHMARK(BM_RemovalPolicyStep)->Arg(1024)->Arg(16384);

void BM_LabeledOracleStepA(benchmark::State& state) {
  // The naive labeled oracle (linear scans) vs BM_ScenarioAStep: the
  // price of skipping the normalized representation.
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256PlusPlus eng(9);
  recover::balls::LabeledScenarioA chain(
      recover::balls::LabeledState::from_loads(
          std::vector<std::int64_t>(n, 1)),
      2);
  for (auto _ : state) {
    chain.step(eng);
  }
  benchmark::DoNotOptimize(chain.state().balls());
}
BENCHMARK(BM_LabeledOracleStepA)->Arg(1024)->Arg(16384);

void BM_CftpSample(benchmark::State& state) {
  // Full exact stationary draw (doubling windows included).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t s = 0;
  for (auto _ : state) {
    recover::core::CftpOptions opts;
    opts.seed = recover::rng::derive_stream_seed(11, s++);
    const auto sample = recover::core::cftp_sample(
        [&]() {
          return recover::balls::GrandCouplingA<AbkuRule>(
              LoadVector::all_in_one(n, static_cast<std::int64_t>(n)),
              LoadVector::balanced(n, static_cast<std::int64_t>(n)),
              AbkuRule(2));
        },
        opts);
    benchmark::DoNotOptimize(sample->max_load());
  }
}
BENCHMARK(BM_CftpSample)->Arg(32)->Arg(128);

void BM_OrientationDistance(benchmark::State& state) {
  // Bounded Dijkstra over the section-6 premetric (k = limit = 3).
  const recover::orient::DiffState base =
      recover::orient::DiffState::from_diffs({3, 2, 1, 0, 0, -1, -2, -3});
  const auto x = recover::orient::CountState::from_diff_state(base, 3);
  const auto nbs = recover::orient::sbar_neighbors(x);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [y, k] = nbs[i++ % nbs.size()];
    benchmark::DoNotOptimize(
        recover::orient::orientation_distance(x, y, k + 2));
  }
}
BENCHMARK(BM_OrientationDistance);

// ---- kernel rows (BENCH_kernels.json + scripts/perf_gate.py) ---------
//
// Scalar/Batched pairs measure the same work — one block's worth of
// steps per iteration — through the two RECOVER_KERNEL paths, so the
// within-run cpu-time ratio is the kernel speedup (machine-independent;
// perf_gate.py enforces a floor on it).  The unpaired fill rows are
// raw-word throughput baselines for the engines' block API.

// Restores the kernel mode around a benchmark so the paired rows compose
// with the rest of the binary (which runs in the ambient mode) in any
// order.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(recover::kernel::Mode m)
      : was_(recover::kernel::set_mode(m)) {}
  ~KernelModeGuard() { recover::kernel::set_mode(was_); }

 private:
  recover::kernel::Mode was_;
};

void BM_KernelFillXoshiro(benchmark::State& state) {
  Xoshiro256PlusPlus eng(11);
  std::array<std::uint64_t, recover::kernel::kBatchSteps> out;
  for (auto _ : state) {
    eng.fill(out.data(), out.size());
    benchmark::DoNotOptimize(out[0] ^ out[out.size() - 1]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_KernelFillXoshiro);

void BM_KernelFillPhilox(benchmark::State& state) {
  recover::rng::Philox4x32 eng(11);
  std::array<std::uint64_t, recover::kernel::kBatchSteps> out;
  for (auto _ : state) {
    eng.fill(out.data(), out.size());
    benchmark::DoNotOptimize(out[0] ^ out[out.size() - 1]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_KernelFillPhilox);

// The d-choice pair runs on both engines.  Xoshiro's recurrence is
// serial, so its batched win is the fused map/reduce riding under the
// recurrence's dependency chain; Philox's counter blocks are independent,
// so its fill is SIMD-wide and the batched win is a multiple.
template <typename Engine>
void BM_KernelDChoiceScalar(benchmark::State& state) {
  // One block of ABKU[d] selections, drawn the scalar way: d engine
  // calls + d Lemire maps + a running max per selection.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto d = static_cast<int>(state.range(1));
  Engine eng(12);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < recover::kernel::kBatchSteps; ++i) {
      acc ^= recover::rng::max_of_d_uniform(eng, n, d);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(recover::kernel::kBatchSteps));
}
void BM_KernelDChoiceScalarXoshiro(benchmark::State& state) {
  BM_KernelDChoiceScalar<Xoshiro256PlusPlus>(state);
}
void BM_KernelDChoiceScalarPhilox(benchmark::State& state) {
  BM_KernelDChoiceScalar<recover::rng::Philox4x32>(state);
}
BENCHMARK(BM_KernelDChoiceScalarXoshiro)
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({16384, 2});
BENCHMARK(BM_KernelDChoiceScalarPhilox)->Args({1024, 2})->Args({1024, 4});

template <typename Engine>
void BM_KernelDChoiceBatched(benchmark::State& state) {
  // The same block of selections through DChoiceBatch: one fill, one
  // SoA map+reduce pass (fused into the fill for streaming engines).
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto d = static_cast<int>(state.range(1));
  Engine eng(12);
  recover::kernel::DChoiceBatch batch;
  for (auto _ : state) {
    batch.fill(eng, n, d, recover::kernel::kBatchSteps, /*leads_per_step=*/0);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < recover::kernel::kBatchSteps; ++i) {
      acc ^= batch.choice(i);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(recover::kernel::kBatchSteps));
}
void BM_KernelDChoiceBatchedXoshiro(benchmark::State& state) {
  BM_KernelDChoiceBatched<Xoshiro256PlusPlus>(state);
}
void BM_KernelDChoiceBatchedPhilox(benchmark::State& state) {
  BM_KernelDChoiceBatched<recover::rng::Philox4x32>(state);
}
BENCHMARK(BM_KernelDChoiceBatchedXoshiro)
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({16384, 2});
BENCHMARK(BM_KernelDChoiceBatchedPhilox)->Args({1024, 2})->Args({1024, 4});

template <recover::kernel::Mode kMode>
void BM_KernelPhaseA(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelModeGuard guard(kMode);
  Xoshiro256PlusPlus eng(13);
  recover::balls::ScenarioAChain<AbkuRule> chain(
      LoadVector::balanced(n, static_cast<std::int64_t>(n)), AbkuRule(2));
  for (auto _ : state) {
    recover::kernel::advance(
        chain, eng, static_cast<std::int64_t>(recover::kernel::kBatchSteps));
  }
  benchmark::DoNotOptimize(chain.state().max_load());
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(recover::kernel::kBatchSteps));
}
void BM_KernelPhaseAScalar(benchmark::State& state) {
  BM_KernelPhaseA<recover::kernel::Mode::kScalar>(state);
}
void BM_KernelPhaseABatched(benchmark::State& state) {
  BM_KernelPhaseA<recover::kernel::Mode::kBatched>(state);
}
BENCHMARK(BM_KernelPhaseAScalar)->Arg(1024);
BENCHMARK(BM_KernelPhaseABatched)->Arg(1024);

template <recover::kernel::Mode kMode>
void BM_KernelPhaseB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelModeGuard guard(kMode);
  Xoshiro256PlusPlus eng(14);
  recover::balls::ScenarioBChain<AbkuRule> chain(
      LoadVector::balanced(n, static_cast<std::int64_t>(n)), AbkuRule(2));
  for (auto _ : state) {
    recover::kernel::advance(
        chain, eng, static_cast<std::int64_t>(recover::kernel::kBatchSteps));
  }
  benchmark::DoNotOptimize(chain.state().max_load());
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(recover::kernel::kBatchSteps));
}
void BM_KernelPhaseBScalar(benchmark::State& state) {
  BM_KernelPhaseB<recover::kernel::Mode::kScalar>(state);
}
void BM_KernelPhaseBBatched(benchmark::State& state) {
  BM_KernelPhaseB<recover::kernel::Mode::kBatched>(state);
}
BENCHMARK(BM_KernelPhaseBScalar)->Arg(1024);
BENCHMARK(BM_KernelPhaseBBatched)->Arg(1024);

template <recover::kernel::Mode kMode>
void BM_KernelCouplingA(benchmark::State& state) {
  // Lockstep grand-coupling advance: both copies through one shared
  // choice block per chunk.
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelModeGuard guard(kMode);
  Xoshiro256PlusPlus eng(15);
  recover::balls::GrandCouplingA<AbkuRule> coupling(
      LoadVector::all_in_one(n, static_cast<std::int64_t>(n)),
      LoadVector::balanced(n, static_cast<std::int64_t>(n)), AbkuRule(2));
  for (auto _ : state) {
    recover::kernel::advance(
        coupling, eng,
        static_cast<std::int64_t>(recover::kernel::kBatchSteps));
  }
  benchmark::DoNotOptimize(coupling.distance());
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(recover::kernel::kBatchSteps));
}
void BM_KernelCouplingAScalar(benchmark::State& state) {
  BM_KernelCouplingA<recover::kernel::Mode::kScalar>(state);
}
void BM_KernelCouplingABatched(benchmark::State& state) {
  BM_KernelCouplingA<recover::kernel::Mode::kBatched>(state);
}
BENCHMARK(BM_KernelCouplingAScalar)->Arg(1024);
BENCHMARK(BM_KernelCouplingABatched)->Arg(1024);

// ---- observability overhead (BENCH_trace.json tracks these) ----------
//
// The cost of one obs::ScopedSpan construct/destruct pair under each
// switch state.  "Off" is the price every instrumented hot loop pays
// unconditionally (two relaxed loads + branches, no clock read); the
// enabled variants add the clock reads plus the histogram fetch_add
// and/or two ring pushes.

// Restores the metrics/trace switches around a benchmark so the span
// suite composes with the rest of the binary in any order.
class SwitchGuard {
 public:
  SwitchGuard(bool metrics, bool trace)
      : metrics_was_(recover::obs::metrics_enabled()),
        trace_was_(recover::obs::trace_enabled()) {
    recover::obs::set_metrics_enabled(metrics);
    recover::obs::set_trace_enabled(trace);
  }
  ~SwitchGuard() {
    recover::obs::set_metrics_enabled(metrics_was_);
    recover::obs::set_trace_enabled(trace_was_);
  }

 private:
  bool metrics_was_;
  bool trace_was_;
};

recover::obs::Histogram& span_bench_histogram() {
  static recover::obs::Histogram& h =
      recover::obs::Registry::global().histogram("bench.span_ns");
  return h;
}

void BM_SpanRecordOff(benchmark::State& state) {
  SwitchGuard guard(false, false);
  auto& h = span_bench_histogram();
  for (auto _ : state) {
    recover::obs::ScopedSpan span(h);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanRecordOff);

void BM_SpanRecordMetrics(benchmark::State& state) {
  SwitchGuard guard(true, false);
  auto& h = span_bench_histogram();
  for (auto _ : state) {
    recover::obs::ScopedSpan span(h);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanRecordMetrics);

void BM_SpanRecordTrace(benchmark::State& state) {
  // Rings overwrite their oldest events, so a long benchmark run stays
  // within the fixed per-thread footprint.
  SwitchGuard guard(false, true);
  auto& h = span_bench_histogram();
  for (auto _ : state) {
    recover::obs::ScopedSpan span(h);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanRecordTrace);

void BM_SpanRecordBoth(benchmark::State& state) {
  SwitchGuard guard(true, true);
  auto& h = span_bench_histogram();
  for (auto _ : state) {
    recover::obs::ScopedSpan span(h);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanRecordBoth);

void BM_TraceInstant(benchmark::State& state) {
  SwitchGuard guard(false, true);
  for (auto _ : state) {
    recover::obs::trace::instant("bench.instant", "k", 1);
  }
}
BENCHMARK(BM_TraceInstant);

// Console reporter that also captures every finished benchmark into a
// util::Table, so the run record holds exactly the rows that were
// printed (name, iterations, adjusted real/cpu ns per iteration).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  // Default OO_Defaults forces color codes even into pipes; only color
  // when stdout is actually a terminal.
  explicit CapturingReporter(recover::util::Table& table)
      : benchmark::ConsoleReporter(isatty(fileno(stdout)) != 0
                                       ? OO_ColorTabular
                                       : OO_Tabular),
        table_(table) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const auto& r : reports) {
      if (r.error_occurred) continue;
      table_.row()
          .add(r.benchmark_name())
          .integer(static_cast<std::int64_t>(r.iterations))
          .num(r.GetAdjustedRealTime(), 2)
          .num(r.GetAdjustedCPUTime(), 2);
    }
  }

 private:
  recover::util::Table& table_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the obs flags (--json-out,
// --metrics, --progress) are split off first and every remaining
// --benchmark_* token is forwarded to google-benchmark untouched.
int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("bench_microbench",
                "google-benchmark micro suite: per-step costs + ablations");
  obs::register_cli_flags(cli);
  auto leftovers = cli.parse_known(argc, argv);
  obs::Run run(cli);

  std::string prog = cli.program();
  std::vector<char*> bench_argv;
  bench_argv.push_back(prog.data());
  for (auto& token : leftovers) bench_argv.push_back(token.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }

  util::Table table({"benchmark", "iterations", "real_ns", "cpu_ns"});
  CapturingReporter reporter(table);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  run.add_table("microbench", table);
  return 0;
}
