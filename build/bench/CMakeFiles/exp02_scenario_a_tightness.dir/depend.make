# Empty dependencies file for exp02_scenario_a_tightness.
# This may be replaced when dependencies are built.
