// Repeated Balls-into-Bins (RBB): the modern successor of the paper's
// Scenario A/B chains (see PAPERS.md).
//
// One round: every non-empty bin ejects one ball, then the s ejected
// balls re-enter one at a time through the placement rule.  With the
// uniform rule (ABKU[1]) this is the classical RBB process of Becchetti
// et al.; d >= 2 is the d-choice variant.  Two headline claims drive
// exp22/exp23:
//
//   * Cancrini–Posta, "Mixing time for the Repeated Balls-into-Bins
//     dynamics": for m = O(n) the chain mixes in O(n log n) rounds.
//   * Los–Sauerwald, "Tight Bounds for Repeated Balls-into-Bins": for
//     m = Θ(n) the stationary maximum load is Θ(log n), and the process
//     self-stabilizes from worst-case concentrated starts (the max load
//     of an adversarial pile decays to the typical band and stays there).
//
// The ejection is a deterministic function of the load *multiset*, so the
// normalized LoadVector state space still captures RBB exactly; the only
// randomness is the placement probe stream, which makes the batched
// kernel fit naturally: one ABKU[d] choice block per round with no lead
// word (DChoiceBatch leads_per_step = 0).  Because the round length s is
// known only after the ejection, blocks are filled per round — never
// ahead of it — so scalar and batched modes consume the engine word for
// word identically (certified by the "rbb" ChainModel and tests/rbb_test).
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>

#include "src/balls/coupling_common.hpp"
#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/kernel/choice_block.hpp"

namespace recover::balls {

template <typename Rule>
class RBBChain {
 public:
  using State = LoadVector;

  RBBChain(LoadVector init, Rule rule)
      : state_(std::move(init)), rule_(std::move(rule)) {
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const LoadVector& state() const { return state_; }
  [[nodiscard]] LoadVector& mutable_state() { return state_; }
  void set_state(LoadVector s) {
    RL_REQUIRE(s.balls() == state_.balls());
    RL_REQUIRE(s.bins() == state_.bins());
    state_ = std::move(s);
  }

  [[nodiscard]] const Rule& rule() const { return rule_; }
  [[nodiscard]] std::size_t bins() const { return state_.bins(); }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }

  /// One round: deterministic ejection, then s sequential re-placements
  /// (each sees the updated vector, like the sequential arrivals of the
  /// round in the source papers).
  template <typename Engine>
  void step(Engine& eng) {
    const std::size_t s = state_.eject_one_per_nonempty();
    for (std::size_t k = 0; k < s; ++k) {
      ProbeFresh<Engine> probe(eng, state_.bins());
      state_.add_at(rule_.place_index(state_, probe));
    }
  }

  /// `steps` rounds through the batched d-choice kernel.  The round
  /// length is state-dependent, so each round draws its own choice
  /// blocks (lead-free, probe words only) sized to exactly the s
  /// placements the scalar path would draw — byte-identical either way.
  template <typename Engine>
  void step_block(Engine& eng, std::int64_t steps) {
    if constexpr (std::is_same_v<Rule, AbkuRule>) {
      if (rule_.d() <= kernel::kMaxBatchedProbes) {
        for (std::int64_t r = 0; r < steps; ++r) round_batched(eng);
        return;
      }
    }
    for (std::int64_t k = 0; k < steps; ++k) step(eng);
  }

 private:
  // Instantiated only for AbkuRule (guarded by if constexpr above).
  template <typename Engine>
  void round_batched(Engine& eng) {
    const auto n = static_cast<std::uint64_t>(state_.bins());
    std::size_t remaining = state_.eject_one_per_nonempty();
    kernel::DChoiceBatch batch;
    while (remaining > 0) {
      const std::size_t chunk = std::min(remaining, kernel::kBatchSteps);
      batch.fill(eng, n, rule_.d(), chunk, /*leads_per_step=*/0);
      for (std::size_t i = 0; i < chunk; ++i) {
        if (batch.probe_unsafe(i)) {
          // A pre-drawn probe word may have been a Lemire rejection:
          // replay the rest of this chunk through the scalar placement
          // path, word for word, then resume batched.
          auto replay = batch.replay_from(eng, i);
          for (std::size_t k = i; k < chunk; ++k) {
            ProbeFresh<decltype(replay)> probe(replay, state_.bins());
            state_.add_at(rule_.place_index(state_, probe));
          }
          break;
        }
        state_.add_at(static_cast<std::size_t>(batch.choice(i)));
      }
      remaining -= chunk;
    }
  }

  LoadVector state_;
  Rule rule_;
};

/// Grand coupling of two RBB copies with equal bin and ball counts, for
/// the coalescence/recovery estimators.  The ejection halves are
/// deterministic; the placement halves share one probe sequence per ball
/// for the min(s_x, s_y) balls both copies re-place (Lemma 3.3 shared
/// probes, so equal copies stay equal forever), and the surplus copy's
/// extra balls draw fresh probes.  Each marginal is exactly the RBB law:
/// probes are i.u.r. either way, sharing only correlates the copies.
template <typename Rule>
class GrandCouplingRBB {
 public:
  GrandCouplingRBB(LoadVector x, LoadVector y, Rule rule)
      : x_(std::move(x)), y_(std::move(y)), rule_(std::move(rule)) {
    RL_REQUIRE(x_.bins() == y_.bins());
    RL_REQUIRE(x_.balls() == y_.balls());
    RL_REQUIRE(x_.balls() > 0);
  }

  template <typename Engine>
  void step(Engine& eng) {
    const std::size_t sx = x_.eject_one_per_nonempty();
    const std::size_t sy = y_.eject_one_per_nonempty();
    place_from(eng, 0, std::min(sx, sy), std::max(sx, sy), sx >= sy);
  }

  /// Lockstep batched round: one lead-free choice block drives the
  /// shared placements into both copies and the surplus placements into
  /// the longer copy, in the same word order as step().
  template <typename Engine>
  void step_block(Engine& eng, std::int64_t steps) {
    if constexpr (std::is_same_v<Rule, AbkuRule>) {
      if (rule_.d() <= kernel::kMaxBatchedProbes) {
        for (std::int64_t r = 0; r < steps; ++r) round_batched(eng);
        return;
      }
    }
    for (std::int64_t k = 0; k < steps; ++k) step(eng);
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.distance(y_); }
  [[nodiscard]] const LoadVector& first() const { return x_; }
  [[nodiscard]] const LoadVector& second() const { return y_; }

 private:
  /// Placements k = `from` .. `total` of one round: shared-probe coupled
  /// placements first, then the surplus copy's fresh-probe placements.
  /// The scalar code path — also the batched bail-out target.
  template <typename Engine>
  void place_from(Engine& eng, std::size_t from, std::size_t shared,
                  std::size_t total, bool surplus_in_x) {
    LoadVector& longer = surplus_in_x ? x_ : y_;
    for (std::size_t k = from; k < total; ++k) {
      if (k < shared) {
        coupled_place(rule_, x_, y_, eng);
      } else {
        ProbeFresh<Engine> probe(eng, longer.bins());
        longer.add_at(rule_.place_index(longer, probe));
      }
    }
  }

  // Instantiated only for AbkuRule (guarded by if constexpr above).
  template <typename Engine>
  void round_batched(Engine& eng) {
    const auto n = static_cast<std::uint64_t>(x_.bins());
    const std::size_t sx = x_.eject_one_per_nonempty();
    const std::size_t sy = y_.eject_one_per_nonempty();
    const std::size_t shared = std::min(sx, sy);
    const std::size_t total = std::max(sx, sy);
    LoadVector& longer = sx >= sy ? x_ : y_;
    std::size_t done = 0;
    kernel::DChoiceBatch batch;
    while (done < total) {
      const std::size_t chunk = std::min(total - done, kernel::kBatchSteps);
      batch.fill(eng, n, rule_.d(), chunk, /*leads_per_step=*/0);
      for (std::size_t i = 0; i < chunk; ++i) {
        if (batch.probe_unsafe(i)) {
          auto replay = batch.replay_from(eng, i);
          place_from(replay, done + i, shared, done + chunk, sx >= sy);
          break;
        }
        // Shared probes, shared running max: the ABKU placement is the
        // same sorted index in both copies (Lemma 3.3 / Φ_D = identity).
        const auto c = static_cast<std::size_t>(batch.choice(i));
        if (done + i < shared) {
          x_.add_at(c);
          y_.add_at(c);
        } else {
          longer.add_at(c);
        }
      }
      done += chunk;
    }
  }

  LoadVector x_;
  LoadVector y_;
  Rule rule_;
};

}  // namespace recover::balls
