// Placement scheduling rules: ABKU[d] (Azar–Broder–Karlin–Upfal) and the
// adaptive ADAP(x) rule of Czumaj–Stemann (§2 of the paper).
//
// Both rules are *right-oriented random functions* (Definition 3.4): their
// randomness is an explicit probe sequence b = (b₁, b₂, …) of i.u.r. sorted
// bin indices, and the placement is the deterministic function
//
//   D(v, b) = p(b)_j,   p(b)_t = max{b₁,…,b_t},
//   j = min{ t : x_{v[p(b)_t]} ≤ t }                      (formula (1))
//
// with x ≡ d for ABKU[d].  Lemma 3.4 shows this D is right-oriented with
// Φ_D = identity, so a coupling feeds the *same* probe sequence to both
// copies (Lemma 3.3) and the ‖·‖₁ distance cannot grow on placement.
//
// Under the normalized representation, b_t being a *sorted* index means a
// larger index has smaller-or-equal load, so "least loaded probe so far"
// is simply the running maximum index.
#pragma once

#include <cstdint>
#include <vector>

#include "src/balls/load_vector.hpp"
#include "src/rng/distributions.hpp"
#include "src/util/assert.hpp"

namespace recover::balls {

/// Lazily draws and memoizes the probe sequence b so a coupled step can
/// replay identical probes into both copies of the chain.
template <typename Engine>
class ProbeMemo {
 public:
  ProbeMemo(Engine& eng, std::size_t n) : eng_(eng), n_(n) {}

  std::size_t operator()(std::size_t k) {
    while (probes_.size() <= k) {
      probes_.push_back(
          static_cast<std::size_t>(rng::uniform_below(eng_, n_)));
    }
    return probes_[k];
  }

  [[nodiscard]] std::size_t drawn() const { return probes_.size(); }

 private:
  Engine& eng_;
  std::size_t n_;
  std::vector<std::size_t> probes_;
};

/// Fresh-draw probe source for uncoupled steps (no memoization cost).
template <typename Engine>
class ProbeFresh {
 public:
  ProbeFresh(Engine& eng, std::size_t n) : eng_(eng), n_(n) {}

  std::size_t operator()(std::size_t /*k*/) {
    return static_cast<std::size_t>(rng::uniform_below(eng_, n_));
  }

 private:
  Engine& eng_;
  std::size_t n_;
};

/// ABKU[d]: place into the least full of d bins chosen i.u.r. with
/// replacement.  d = 1 is the classical single-choice process.
class AbkuRule {
 public:
  explicit AbkuRule(int d) : d_(d) { RL_REQUIRE(d >= 1); }

  [[nodiscard]] int d() const { return d_; }

  /// Number of probes consumed is always exactly d.
  template <typename ProbeFn>
  std::size_t place_index(const LoadVector& v, ProbeFn&& probe) const {
    (void)v;
    std::size_t best = probe(0);
    for (int k = 1; k < d_; ++k) {
      const std::size_t b = probe(static_cast<std::size_t>(k));
      if (b > best) best = b;
    }
    return best;
  }

  /// Exact pmf of the placed sorted index: P(j) = ((j+1)/n)^d − (j/n)^d.
  [[nodiscard]] std::vector<double> placement_pmf(std::size_t n) const;

 private:
  int d_;
};

/// Non-decreasing threshold schedule x = (x₀, x₁, …) indexed by load;
/// values past the stored prefix clamp to the last stored threshold.
class ThresholdSchedule {
 public:
  explicit ThresholdSchedule(std::vector<int> thresholds)
      : x_(std::move(thresholds)) {
    RL_REQUIRE(!x_.empty());
    RL_REQUIRE(x_.front() >= 1);
    for (std::size_t i = 1; i < x_.size(); ++i) {
      RL_REQUIRE(x_[i] >= x_[i - 1]);
    }
  }

  /// Constant schedule x ≡ d (recovers ABKU[d]).
  static ThresholdSchedule constant(int d) {
    return ThresholdSchedule({d});
  }

  /// x_l = min(base + l * slope, cap): linearly growing patience.
  static ThresholdSchedule linear(int base, int slope, int cap);

  [[nodiscard]] int at(std::int64_t load) const {
    RL_DBG_ASSERT(load >= 0);
    const auto i = static_cast<std::size_t>(load);
    return i < x_.size() ? x_[i] : x_.back();
  }

  [[nodiscard]] const std::vector<int>& values() const { return x_; }

 private:
  std::vector<int> x_;
};

/// ADAP(x): probe bins one at a time, tracking the least-loaded probe so
/// far; stop as soon as the number of probes reaches the threshold for
/// that bin's load (low load ⇒ settle quickly, high load ⇒ keep probing).
class AdapRule {
 public:
  explicit AdapRule(ThresholdSchedule schedule)
      : x_(std::move(schedule)) {}

  [[nodiscard]] const ThresholdSchedule& schedule() const { return x_; }

  /// Exact pmf of the placed sorted index for the given state — the
  /// probe process is a Markov chain on (best index, probe count), so a
  /// short dynamic program over probe rounds computes the law exactly
  /// (rounds are bounded by the schedule's largest threshold).  Powers
  /// the exact-mixing validation of the adaptive rule.
  [[nodiscard]] std::vector<double> placement_pmf(const LoadVector& v) const;

  template <typename ProbeFn>
  std::size_t place_index(const LoadVector& v, ProbeFn&& probe) const {
    std::size_t best = probe(0);
    std::size_t m = 1;
    while (x_.at(v.load(best)) > static_cast<int>(m)) {
      // Probes never run forever: once m probes have been taken, the
      // running max index stochastically reaches the minimum-load run,
      // whose threshold is finite.
      const std::size_t b = probe(m);
      ++m;
      if (b > best) best = b;
      // Guard against pathological schedules on tiny n: after n·x_max
      // probes the best index is almost surely the global minimum; cap
      // hard at a generous bound so a misuse cannot hang.
      RL_DBG_ASSERT(m < 64 * (v.bins() + 4) *
                            static_cast<std::size_t>(x_.at(v.min_load())));
    }
    return best;
  }

 private:
  ThresholdSchedule x_;
};

}  // namespace recover::balls
