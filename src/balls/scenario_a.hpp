// Scenario A (§2, §4): the protocol the paper calls I_A.
//
// Repeatedly: remove a ball chosen i.u.r. among the m balls in the system
// (bin i loses a ball with probability v_i / m — distribution 𝒜(v) of
// Definition 3.2), then place a new ball with the scheduling rule.
// With rule ABKU[d] this is I_A-ABKU[d] (the Azar et al. dynamic process);
// with ADAP(x) it is I_A-ADAP(x).
//
// Theorem 1: for any right-oriented rule, τ(ε) ≤ ⌈m ln(m ε⁻¹)⌉, and the
// bound is tight up to lower-order terms.
#pragma once

#include <utility>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"

namespace recover::balls {

template <typename Rule>
class ScenarioAChain {
 public:
  using State = LoadVector;

  ScenarioAChain(LoadVector init, Rule rule)
      : state_(std::move(init)), rule_(std::move(rule)) {
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const LoadVector& state() const { return state_; }
  [[nodiscard]] LoadVector& mutable_state() { return state_; }
  void set_state(LoadVector s) {
    RL_REQUIRE(s.balls() == state_.balls());
    RL_REQUIRE(s.bins() == state_.bins());
    state_ = std::move(s);
  }

  [[nodiscard]] const Rule& rule() const { return rule_; }
  [[nodiscard]] std::size_t bins() const { return state_.bins(); }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }

  /// One phase: remove via 𝒜(v), insert via the rule.
  template <typename Engine>
  void step(Engine& eng) {
    const std::size_t i = state_.sample_ball_weighted(eng);
    state_.remove_at(i);
    ProbeFresh<Engine> probe(eng, state_.bins());
    state_.add_at(rule_.place_index(state_, probe));
  }

 private:
  LoadVector state_;
  Rule rule_;
};

/// Exact removal pmf of 𝒜(v) over sorted indices (Definition 3.2):
/// p_i = v_i / m.  Used by the exact-mixing validation harness.
std::vector<double> scenario_a_removal_pmf(const LoadVector& v);

}  // namespace recover::balls
