# Empty compiler generated dependencies file for exp21_adap_fluid.
# This may be replaced when dependencies are built.
