# Empty dependencies file for exp13_fair_allocation.
# This may be replaced when dependencies are built.
