file(REMOVE_RECURSE
  "CMakeFiles/autocorr_test.dir/autocorr_test.cpp.o"
  "CMakeFiles/autocorr_test.dir/autocorr_test.cpp.o.d"
  "autocorr_test"
  "autocorr_test.pdb"
  "autocorr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocorr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
