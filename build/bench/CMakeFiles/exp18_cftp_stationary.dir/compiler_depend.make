# Empty compiler generated dependencies file for exp18_cftp_stationary.
# This may be replaced when dependencies are built.
