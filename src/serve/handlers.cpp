#include "src/serve/handlers.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/obs/json_writer.hpp"
#include "src/rng/engines.hpp"
#include "src/sweep/grid.hpp"
#include "src/sweep/registry.hpp"

namespace recover::serve {

namespace {

HandlerResult error(ErrorCode code, std::string message) {
  HandlerResult out;
  out.ok = false;
  out.code = code;
  out.message = std::move(message);
  return out;
}

HandlerResult result(std::string json) {
  HandlerResult out;
  out.ok = true;
  out.result_json = std::move(json);
  return out;
}

HandlerResult run_cell(const Request& req, const HandlerContext& ctx) {
  RunCellRequest parsed;
  std::string parse_message;
  if (!parse_run_cell(req.params, parsed, parse_message)) {
    return error(ErrorCode::kInvalidParams, std::move(parse_message));
  }
  const auto* exp = parsed.exp;
  sweep::Cell& cell = parsed.cell;
  const std::uint64_t seed = parsed.seed;

  const std::string cell_key = cell.key();

  sweep::CellContext cell_ctx;
  // Pure function of the request content: the cell's canonical key folds
  // the parameters in, so (exp, params, seed) → stream, independent of
  // which worker or pool size executes it.  That is what makes replies
  // byte-deterministic across runs and thread counts.
  cell_ctx.seed = rng::substream(seed, sweep::cell_hash(exp->name, cell));
  cell_ctx.parallel_within_cell = ctx.cells_parallel;
  cell_ctx.cancelled = ctx.cancelled;
  cell_ctx.req_id = ctx.req_id;

  sweep::CellResult values;
  try {
    values = exp->run(cell, cell_ctx);
  } catch (const std::exception& e) {
    // A cell body that rejects its parameters (bad axis combination)
    // surfaces as invalid_params, never as a dropped connection.
    HandlerResult out = error(ErrorCode::kInvalidParams, e.what());
    out.cell_key = cell_key;
    return out;
  }
  if (ctx.cancelled && ctx.cancelled()) {
    // The body returned, but only because cancellation truncated it; its
    // values are not the real cell result and must not be sent.
    HandlerResult out =
        error(ErrorCode::kDeadlineExceeded,
              "deadline expired while the cell was running");
    out.cell_key = cell_key;
    return out;
  }

  std::string json = "{\"exp\":\"";
  json += obs::json_escape(exp->name);
  json += "\",\"key\":\"";
  json += obs::json_escape(cell_key);
  json += "\",\"values\":{";
  // result_columns order (the registry's canonical order), not set()
  // order, so the reply layout is part of the experiment's contract.
  for (std::size_t i = 0; i < exp->result_columns.size(); ++i) {
    if (i != 0) json += ',';
    json += '"';
    json += obs::json_escape(exp->result_columns[i]);
    json += "\":";
    json += obs::json_number(values.at(exp->result_columns[i]));
  }
  json += "}}";
  HandlerResult out = result(std::move(json));
  out.cell_key = cell_key;
  return out;
}

HandlerResult list_cells() {
  std::string json = "{\"experiments\":[";
  bool first_exp = true;
  auto& registry = sweep::Registry::global();
  for (const auto& name : registry.names()) {
    const auto* exp = registry.find(name);
    if (!first_exp) json += ',';
    first_exp = false;
    json += "{\"name\":\"";
    json += obs::json_escape(exp->name);
    json += "\",\"description\":\"";
    json += obs::json_escape(exp->description);
    json += "\",\"default_grid\":\"";
    json += obs::json_escape(exp->default_grid);
    json += "\",\"columns\":[";
    for (std::size_t i = 0; i < exp->result_columns.size(); ++i) {
      if (i != 0) json += ',';
      json += '"';
      json += obs::json_escape(exp->result_columns[i]);
      json += '"';
    }
    json += "]}";
  }
  json += "]}";
  return result(std::move(json));
}

HandlerResult stats(const HandlerContext& ctx) {
  const ServerSnapshot snap =
      ctx.snapshot ? ctx.snapshot() : ServerSnapshot{};
  std::string json = "{";
  const auto field = [&json](const char* name, std::uint64_t v,
                             bool last = false) {
    json += '"';
    json += name;
    json += "\":";
    json += std::to_string(v);
    if (!last) json += ',';
  };
  const auto dfield = [&json](const char* name, double v) {
    json += '"';
    json += name;
    json += "\":";
    json += obs::json_number(v);
    json += ',';
  };
  field("connections_total", snap.connections_total);
  field("connections_open", snap.connections_open);
  field("requests_total", snap.requests_total);
  field("responses_ok", snap.responses_ok);
  field("shed_total", snap.shed_total);
  field("deadline_exceeded_total", snap.deadline_exceeded_total);
  field("protocol_errors_total", snap.protocol_errors_total);
  field("queue_depth", snap.queue_depth);
  field("queue_capacity", snap.queue_capacity);
  field("in_flight", snap.in_flight);
  field("uptime_ms", snap.uptime_ms);
  // Rolling-window view (docs/OBSERVABILITY.md, "Live telemetry"):
  // last ~10 s, not process lifetime.  Latency quantiles are 0 until
  // metrics are enabled (the daemon enables them with --admin-port).
  field("window_span_ms", snap.window_span_ms);
  field("window_requests", snap.window_requests);
  field("window_shed", snap.window_shed);
  dfield("window_qps", snap.window_qps);
  dfield("window_p50_us", snap.window_p50_us);
  dfield("window_p95_us", snap.window_p95_us);
  dfield("window_p99_us", snap.window_p99_us);
  json += "\"version\":\"";
  json += kServeVersion;
  json += "\",\"draining\":";
  json += snap.draining ? "true" : "false";
  json += '}';
  return result(std::move(json));
}

}  // namespace

/// Axis count cap for run_cell: bounds the canonical key length (and
/// thus the reply size) no matter what the peer sends.
constexpr std::size_t kMaxCellParams = 16;

bool parse_run_cell(const obs::JsonValue& params, RunCellRequest& out,
                    std::string& error) {
  const auto* exp_field = params.find("exp");
  if (exp_field == nullptr || !exp_field->is_string()) {
    error = "params.exp must be a string";
    return false;
  }
  out.exp = sweep::Registry::global().find(exp_field->text);
  if (out.exp == nullptr) {
    error = "unknown experiment '" + exp_field->text + "' (see list_cells)";
    return false;
  }
  out.seed = 1;
  if (const auto* s = params.find("seed"); s != nullptr) {
    if (!s->is_number() || s->number < 0 ||
        s->number != std::floor(s->number) ||
        s->number > 9.007199254740992e15) {
      error = "params.seed must be an integer in [0, 2^53]";
      return false;
    }
    out.seed = static_cast<std::uint64_t>(s->number);
  }
  const auto* cell_params = params.find("params");
  if (cell_params == nullptr || !cell_params->is_object() ||
      cell_params->members.empty()) {
    error = "params.params must be a non-empty object of integer axes";
    return false;
  }
  if (cell_params->members.size() > kMaxCellParams) {
    error = "too many cell parameters";
    return false;
  }
  out.cell = sweep::Cell{};
  for (const auto& [name, value] : cell_params->members) {
    if (name.empty() || !value.is_number() ||
        value.number != std::floor(value.number) ||
        std::abs(value.number) > 9.007199254740992e15) {
      error = "cell parameter '" + name + "' must be an integer";
      return false;
    }
    out.cell.params.emplace_back(name,
                                 static_cast<std::int64_t>(value.number));
  }
  // The body reads its required axes with Cell::at, which aborts on a
  // missing name — that must stay unreachable from the wire.
  for (const std::string& name : out.exp->required_params) {
    const auto present = [&name](const auto& kv) { return kv.first == name; };
    if (std::none_of(out.cell.params.begin(), out.cell.params.end(),
                     present)) {
      error = "experiment '" + out.exp->name +
              "' requires cell parameter '" + name + "'";
      return false;
    }
  }
  return true;
}

HandlerResult dispatch(const Request& req, const HandlerContext& ctx) {
  if (req.method == "ping") {
    return result("{\"pong\":true}");
  }
  if (req.method == "list_cells") {
    return list_cells();
  }
  if (req.method == "run_cell") {
    return run_cell(req, ctx);
  }
  if (req.method == "stats") {
    return stats(ctx);
  }
  return error(ErrorCode::kUnknownMethod,
               "unknown method '" + req.method +
                   "' (ping, list_cells, run_cell, stats, shutdown)");
}

}  // namespace recover::serve
