#!/usr/bin/env python3
"""Validate recover.run/1 JSON records emitted by the experiment binaries.

Checks, per file:
  * the document parses and carries schema == "recover.run/1";
  * run.binary is a non-empty string;
  * every table has a name, a non-empty column list, and rows whose
    arity matches the column count;
  * the record holds at least one row in total (a silently-empty run is
    a CI failure, not a success).

With --aggregate OUT, a compact summary document (one entry per input
record: binary, wall seconds, per-table row counts, notes) is written to
OUT — the commit-friendly benchmark trajectory snapshot.
"""

import argparse
import json
import sys

SCHEMA = "recover.run/1"


def fail(path, message):
    print(f"check_bench_json: {path}: {message}", file=sys.stderr)
    return False


def check_record(path, doc):
    if doc.get("schema") != SCHEMA:
        return fail(path, f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    run = doc.get("run")
    if not isinstance(run, dict):
        return fail(path, "missing run object")
    if not run.get("binary") or not isinstance(run["binary"], str):
        return fail(path, "run.binary missing or empty")
    tables = doc.get("tables")
    if not isinstance(tables, list):
        return fail(path, "tables is not a list")
    total_rows = 0
    for i, table in enumerate(tables):
        name = table.get("name")
        if not name:
            return fail(path, f"tables[{i}] has no name")
        columns = table.get("columns")
        if not isinstance(columns, list) or not columns:
            return fail(path, f"table {name!r} has no columns")
        rows = table.get("rows")
        if not isinstance(rows, list):
            return fail(path, f"table {name!r} has no rows list")
        for j, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(columns):
                return fail(
                    path,
                    f"table {name!r} row {j} has {len(row)} cells, "
                    f"want {len(columns)}",
                )
        total_rows += len(rows)
    if total_rows == 0:
        return fail(path, "record holds zero rows across all tables")
    return True


def summarize(doc):
    run = doc["run"]
    return {
        "binary": run["binary"],
        "git": run.get("git", "unknown"),
        "wall_seconds": run.get("wall_seconds"),
        "tables": {
            t["name"]: len(t["rows"]) for t in doc.get("tables", [])
        },
        "notes": doc.get("notes", {}),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="recover.run/1 JSON files")
    parser.add_argument(
        "--aggregate",
        metavar="OUT",
        help="write a one-entry-per-record summary document to OUT",
    )
    args = parser.parse_args()

    ok = True
    summaries = []
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            ok = fail(path, f"unreadable or invalid JSON: {e}")
            continue
        if check_record(path, doc):
            summaries.append(summarize(doc))
            rows = sum(len(t["rows"]) for t in doc["tables"])
            print(f"check_bench_json: {path}: OK ({rows} rows)")
        else:
            ok = False

    if not ok:
        return 1

    if args.aggregate:
        summaries.sort(key=lambda s: s["binary"])
        out = {
            "schema": "recover.bench_summary/1",
            "records": summaries,
        }
        with open(args.aggregate, "w", encoding="utf-8") as f:
            json.dump(out, f, indent=2, sort_keys=False)
            f.write("\n")
        print(
            f"check_bench_json: wrote {args.aggregate} "
            f"({len(summaries)} records)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
