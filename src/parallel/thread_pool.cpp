#include "src/parallel/thread_pool.hpp"

#include <chrono>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/trace_buffer.hpp"
#include "src/util/assert.hpp"

namespace recover::parallel {

namespace {

// The pool this thread is currently executing a chunk for, if any.  A
// body that re-enters for_each_index on the same pool is run inline
// (see the header); comparing pointers keeps independent pools (e.g. a
// sweep scheduler pool over the global pool) fully parallel.
thread_local const ThreadPool* t_active_pool = nullptr;

// RAII marker so chunk bodies that throw (or nest further) cannot leave
// a stale active-pool pointer behind.
class ActivePoolScope {
 public:
  explicit ActivePoolScope(const ThreadPool* pool) noexcept
      : previous_(t_active_pool) {
    t_active_pool = pool;
  }
  ~ActivePoolScope() { t_active_pool = previous_; }
  ActivePoolScope(const ActivePoolScope&) = delete;
  ActivePoolScope& operator=(const ActivePoolScope&) = delete;

 private:
  const ThreadPool* previous_;
};

// Chunk-level telemetry: per-participant busy time (the counter's
// per-thread shards make it per-worker for free) and a duration
// histogram whose bucket spread exposes static-chunking imbalance.
void record_chunk(std::uint64_t items,
                  std::chrono::steady_clock::time_point begin) {
  static obs::Counter& busy_ns =
      obs::Registry::global().counter("pool.busy_ns");
  static obs::Counter& chunks =
      obs::Registry::global().counter("pool.chunks");
  static obs::Counter& items_done =
      obs::Registry::global().counter("pool.items");
  static obs::Histogram& chunk_ns =
      obs::Registry::global().histogram("pool.chunk_ns");
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - begin)
                      .count();
  const auto uns = ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  busy_ns.add(uns);
  chunks.add();
  items_done.add(items);
  chunk_ns.record(uns);
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n - 1);
  tasks_.resize(n);
  for (unsigned i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Label the thread for exported traces; cheap, once per thread, and
  // remembered even if --trace flips the switch on later.
  obs::trace::set_thread_name("pool.worker-" +
                              std::to_string(worker_index));
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    const std::function<void(std::uint64_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      body = body_;
    }
    {
      ActivePoolScope active(this);
      if (task.begin < task.end) {
        obs::TraceSpan span("pool.chunk", "items",
                            static_cast<std::int64_t>(task.end - task.begin));
        if (obs::metrics_enabled()) {
          const auto begin = std::chrono::steady_clock::now();
          for (std::uint64_t i = task.begin; i < task.end; ++i) (*body)(i);
          record_chunk(task.end - task.begin, begin);
        } else {
          for (std::uint64_t i = task.begin; i < task.end; ++i) (*body)(i);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) work_done_.notify_one();
    }
  }
}

void ThreadPool::for_each_index(
    std::uint64_t count, const std::function<void(std::uint64_t)>& body) {
  if (count == 0) return;
  static obs::Counter& calls =
      obs::Registry::global().counter("pool.parallel_calls");
  static obs::Counter& nested_inline =
      obs::Registry::global().counter("pool.nested_inline");
  static obs::Gauge& threads = obs::Registry::global().gauge("pool.threads");
  calls.add();
  threads.set(static_cast<double>(size()));
  if (t_active_pool == this) {
    // Nested submission from inside one of this pool's own parallel
    // regions: the workers are already busy with the outer region, so
    // run inline and serially (see the header contract).
    nested_inline.add();
    obs::TraceSpan span("pool.inline", "items",
                        static_cast<std::int64_t>(count));
    if (obs::metrics_enabled()) {
      const auto begin = std::chrono::steady_clock::now();
      for (std::uint64_t i = 0; i < count; ++i) body(i);
      record_chunk(count, begin);
    } else {
      for (std::uint64_t i = 0; i < count; ++i) body(i);
    }
    return;
  }
  const auto participants = static_cast<std::uint64_t>(size());
  if (participants == 1 || count == 1) {
    ActivePoolScope active(this);
    obs::TraceSpan span("pool.chunk", "items",
                        static_cast<std::int64_t>(count));
    if (obs::metrics_enabled()) {
      const auto begin = std::chrono::steady_clock::now();
      for (std::uint64_t i = 0; i < count; ++i) body(i);
      record_chunk(count, begin);
    } else {
      for (std::uint64_t i = 0; i < count; ++i) body(i);
    }
    return;
  }
  // One whole dispatch at a time: generation_/pending_/tasks_ describe a
  // single parallel region, so a second external dispatcher must wait
  // for this one to drain before it may reuse them.
  std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
  // Static contiguous chunking; chunk c covers
  // [c*count/participants, (c+1)*count/participants).
  Task caller_task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    pending_ = 0;
    for (std::uint64_t c = 0; c < participants; ++c) {
      Task t{c * count / participants, (c + 1) * count / participants};
      if (c == 0) {
        caller_task = t;
      } else {
        tasks_[c] = t;
        if (t.begin < t.end) ++pending_;
        // Empty chunks still count: workers decrement unconditionally.
        if (t.begin >= t.end) ++pending_;
      }
    }
    ++generation_;
  }
  work_ready_.notify_all();
  {
    ActivePoolScope active(this);
    if (caller_task.begin < caller_task.end) {
      obs::TraceSpan span(
          "pool.chunk", "items",
          static_cast<std::int64_t>(caller_task.end - caller_task.begin));
      if (obs::metrics_enabled()) {
        const auto begin = std::chrono::steady_clock::now();
        for (std::uint64_t i = caller_task.begin; i < caller_task.end; ++i) {
          body(i);
        }
        record_chunk(caller_task.end - caller_task.begin, begin);
      } else {
        for (std::uint64_t i = caller_task.begin; i < caller_task.end; ++i) {
          body(i);
        }
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return pending_ == 0; });
    body_ = nullptr;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::uint64_t count,
                  const std::function<void(std::uint64_t)>& body) {
  ThreadPool::global().for_each_index(count, body);
}

}  // namespace recover::parallel
