#include "src/certify/fuzz.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <utility>

#include "src/obs/json_reader.hpp"
#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"
#include "src/serve/handlers.hpp"
#include "src/serve/protocol.hpp"

namespace recover::certify {

namespace {

const std::set<std::string>& taxonomy() {
  static const std::set<std::string> codes = {
      "parse_error",       "unknown_method", "invalid_params",
      "overloaded",        "deadline_exceeded", "shutting_down"};
  return codes;
}

/// The wire contract is one frame per line; a mutation that smuggles a
/// newline in would silently change the frame count, so every generated
/// frame is scrubbed.
void strip_newlines(std::string& frame) {
  for (char& c : frame) {
    if (c == '\n' || c == '\r') c = ' ';
  }
}

using Engine = rng::Xoshiro256PlusPlus;

std::string pick_id(Engine& eng) {
  switch (rng::uniform_below(eng, 4)) {
    case 0:
      return std::to_string(rng::uniform_below(eng, 1000));
    case 1:
      return "\"req-" + std::to_string(rng::uniform_below(eng, 1000)) + "\"";
    case 2:
      return "null";
    default: {
      std::string id = "-";
      id += std::to_string(rng::uniform_below(eng, 1000));
      return id;
    }
  }
}

/// A well-formed recover.req/1 frame — the corpus the mutators chew on.
/// Weighted toward cheap methods; run_cell appears both valid (rarely,
/// it actually computes) and with unusable params.
std::string valid_frame(Engine& eng) {
  const std::string id = pick_id(eng);
  std::string deadline;
  if (rng::uniform_below(eng, 4) == 0) {
    // Sometimes an instantly-expiring or generous deadline.
    const char* values[] = {"0", "1", "60000", "86400000"};
    deadline = std::string(",\"deadline_ms\":") +
               values[rng::uniform_below(eng, 4)];
  }
  const std::string head =
      "{\"schema\":\"recover.req/1\",\"id\":" + id + ",\"method\":";
  switch (rng::uniform_below(eng, 10)) {
    case 0:
    case 1:
    case 2:
      return head + "\"ping\"" + deadline + "}";
    case 3:
    case 4:
      return head + "\"stats\"" + deadline + "}";
    case 5:
      return head + "\"list_cells\"" + deadline + "}";
    case 6:  // valid run_cell (small cell, really executes)
      return head +
             "\"run_cell\",\"params\":{\"exp\":\"exp01\",\"seed\":" +
             std::to_string(rng::uniform_below(eng, 64)) +
             ",\"params\":{\"m\":16,\"d\":1,\"density\":1,\"replicas\":1}}" +
             deadline + "}";
    case 7:  // run_cell with unusable params → invalid_params
      switch (rng::uniform_below(eng, 4)) {
        case 0:
          return head + "\"run_cell\",\"params\":{}" + deadline + "}";
        case 1:
          return head +
                 "\"run_cell\",\"params\":{\"exp\":\"no_such_exp\","
                 "\"params\":{\"m\":16}}" +
                 deadline + "}";
        case 2:
          return head +
                 "\"run_cell\",\"params\":{\"exp\":\"exp01\","
                 "\"params\":{\"m\":1.5}}" +
                 deadline + "}";
        default:
          return head +
                 "\"run_cell\",\"params\":{\"exp\":\"exp01\","
                 "\"params\":{},\"seed\":-1}" +
                 deadline + "}";
      }
    case 8:  // unknown method
      return head + "\"no_such_method\"" + deadline + "}";
    default:  // shutdown-adjacent spelling (must NOT kill the server)
      return head + "\"Shutdown\"" + deadline + "}";
  }
}

std::string depth_bomb(Engine& eng) {
  // Around the reader's 64-level nesting cap: some frames just under
  // (parse fine, then fail as invalid params), some far over (must be a
  // parse_error, not a stack overflow).
  const std::size_t depth = 40 + rng::uniform_below(eng, 80);
  std::string params;
  for (std::size_t i = 0; i < depth; ++i) params += "{\"a\":";
  params += "1";
  for (std::size_t i = 0; i < depth; ++i) params += "}";
  return "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\","
         "\"params\":" +
         params + "}";
}

std::string surrogate_abuse(Engine& eng) {
  const char* payloads[] = {
      "\\uD800",        // lone high surrogate
      "\\uDC00",        // lone low surrogate
      "\\uDC00\\uD800", // swapped pair
      "\\uD83D\\uDE00", // valid pair (must parse, then unknown_method)
      "\\uD800\\u0041", // high surrogate followed by a plain escape
  };
  const std::string payload = payloads[rng::uniform_below(eng, 5)];
  return "{\"schema\":\"recover.req/1\",\"id\":\"x" + payload +
         "\",\"method\":\"m" + payload + "\"}";
}

std::string oversized_frame(Engine& eng) {
  // Straddle the 64 KiB framing cap.
  const std::size_t target =
      serve::kMaxLineBytes - 64 + rng::uniform_below(eng, 256);
  std::string frame =
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"";
  frame.append(target, 'x');
  frame += "\"}";
  return frame;
}

std::string type_confusion(Engine& eng) {
  const char* frames[] = {
      // id as structured values
      "{\"schema\":\"recover.req/1\",\"id\":{},\"method\":\"ping\"}",
      "{\"schema\":\"recover.req/1\",\"id\":[1,2],\"method\":\"ping\"}",
      // method as non-string
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":42}",
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":null}",
      // params as non-object
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\","
      "\"params\":[1]}",
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\","
      "\"params\":\"x\"}",
      // deadline abuse
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\","
      "\"deadline_ms\":\"soon\"}",
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\","
      "\"deadline_ms\":-5}",
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\","
      "\"deadline_ms\":1e300}",
      // schema abuse
      "{\"schema\":\"recover.req/2\",\"id\":1,\"method\":\"ping\"}",
      "{\"schema\":42,\"id\":1,\"method\":\"ping\"}",
      "{\"id\":1,\"method\":\"ping\"}",
      // duplicate keys
      "{\"schema\":\"recover.req/1\",\"id\":1,\"id\":2,\"method\":\"ping\"}",
      // huge numbers in params
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\",\"seed\":99999999999999999999,"
      "\"params\":{\"m\":16}}}",
  };
  return frames[rng::uniform_below(eng, sizeof frames / sizeof frames[0])];
}

std::string garbage(Engine& eng) {
  const std::size_t len = 1 + rng::uniform_below(eng, 200);
  std::string frame;
  frame.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    frame += static_cast<char>(rng::uniform_below(eng, 256));
  }
  return frame;
}

std::string truncate_frame(Engine& eng) {
  const std::string base = valid_frame(eng);
  const std::size_t keep = rng::uniform_below(eng, base.size());
  return base.substr(0, keep);
}

std::string splice_frames(Engine& eng) {
  const std::string a = valid_frame(eng);
  const std::string b = valid_frame(eng);
  const std::size_t cut_a = rng::uniform_below(eng, a.size() + 1);
  const std::size_t cut_b = rng::uniform_below(eng, b.size() + 1);
  return a.substr(0, cut_a) + b.substr(cut_b);
}

std::string flip_bytes(Engine& eng) {
  std::string frame = valid_frame(eng);
  const std::size_t flips = 1 + rng::uniform_below(eng, 4);
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t pos = rng::uniform_below(eng, frame.size());
    frame[pos] = static_cast<char>(
        static_cast<unsigned char>(frame[pos]) ^
        static_cast<unsigned char>(1u << rng::uniform_below(eng, 8)));
  }
  return frame;
}

}  // namespace

std::string fuzz_frame(std::uint64_t seed, std::int64_t index) {
  Engine eng(rng::substream(seed, static_cast<std::uint64_t>(index)));
  std::string frame;
  switch (rng::uniform_below(eng, 16)) {
    case 0:
    case 1:
      frame = valid_frame(eng);
      break;
    case 2:
    case 3:
      frame = truncate_frame(eng);
      break;
    case 4:
    case 5:
      frame = splice_frames(eng);
      break;
    case 6:
      frame = depth_bomb(eng);
      break;
    case 7:
    case 8:
      frame = surrogate_abuse(eng);
      break;
    case 9:
      frame = oversized_frame(eng);
      break;
    case 10:
    case 11:
      frame = flip_bytes(eng);
      break;
    case 12:
    case 13:
      frame = type_confusion(eng);
      break;
    case 14:
      frame = garbage(eng);
      break;
    default:
      // Empty / whitespace-only lines.
      frame = std::string(rng::uniform_below(eng, 4), ' ');
      break;
  }
  strip_newlines(frame);
  return frame;
}

std::string validate_reply_line(const std::string& line) {
  obs::JsonValue doc;
  if (!obs::parse_json(line, doc)) return "reply is not valid JSON";
  if (!doc.is_object()) return "reply is not a JSON object";
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->text != serve::kResponseSchema) {
    return "reply schema is not recover.resp/1";
  }
  if (doc.find("id") == nullptr) return "reply lacks an id";
  const obs::JsonValue* ok = doc.find("ok");
  if (ok == nullptr || ok->kind != obs::JsonValue::Kind::kBool) {
    return "reply lacks a boolean 'ok'";
  }
  if (ok->boolean) {
    if (doc.find("result") == nullptr) return "ok reply lacks 'result'";
    return "";
  }
  const obs::JsonValue* error = doc.find("error");
  if (error == nullptr || !error->is_object()) {
    return "error reply lacks an 'error' object";
  }
  const obs::JsonValue* code = error->find("code");
  if (code == nullptr || !code->is_string()) {
    return "error reply lacks a string 'code'";
  }
  if (taxonomy().count(code->text) == 0) {
    return "error code '" + code->text + "' is outside the taxonomy";
  }
  const obs::JsonValue* message = error->find("message");
  if (message == nullptr || !message->is_string()) {
    return "error reply lacks a string 'message'";
  }
  return "";
}

std::string reply_error_code(const std::string& line) {
  obs::JsonValue doc;
  if (!obs::parse_json(line, doc) || !doc.is_object()) return "";
  const obs::JsonValue* error = doc.find("error");
  if (error == nullptr || !error->is_object()) return "";
  const obs::JsonValue* code = error->find("code");
  if (code == nullptr || !code->is_string()) return "";
  return code->text;
}

namespace {

std::string truncate_for_report(const std::string& frame) {
  if (frame.size() <= 120) return frame;
  return frame.substr(0, 120) + "...(" + std::to_string(frame.size()) +
         " bytes)";
}

void record_reply(FuzzReport& report, const FuzzOptions&,
                  std::int64_t frame_index, const std::string& frame,
                  const std::string& reply) {
  ++report.replies;
  const std::string reason = validate_reply_line(reply);
  if (!reason.empty()) {
    report.violations.push_back({frame_index, "bad_reply",
                                 reason + "; reply: " +
                                     truncate_for_report(reply),
                                 truncate_for_report(frame)});
    return;
  }
  const std::string code = reply_error_code(reply);
  if (code.empty()) {
    ++report.ok_replies;
  } else {
    ++report.error_counts[code];
  }
}

}  // namespace

FuzzReport fuzz_handlers(const FuzzOptions& options) {
  FuzzReport report;
  serve::LineReader reader;
  serve::HandlerContext ctx;
  ctx.cells_parallel = false;
  for (std::int64_t i = 0; i < options.frames; ++i) {
    const std::string frame = fuzz_frame(options.seed, i);
    const std::string wire = frame + "\n";
    reader.feed(wire.data(), wire.size());
    std::int64_t replies_this_frame = 0;
    std::string line;
    for (;;) {
      const serve::LineReader::Next next = reader.next_line(line);
      if (next == serve::LineReader::Next::kNeedMore) break;
      std::string reply;
      if (next == serve::LineReader::Next::kOversized) {
        reply = serve::make_error("null", serve::ErrorCode::kParseError,
                                  "request line exceeds the size cap");
      } else {
        serve::Request req;
        const serve::ParseOutcome outcome = serve::parse_request(line, req);
        if (!outcome.ok) {
          reply = serve::make_error(req.id, outcome.code, outcome.message);
        } else {
          const serve::HandlerResult result = serve::dispatch(req, ctx);
          reply = result.ok
                      ? serve::make_result(req.id, result.result_json)
                      : serve::make_error(req.id, result.code, result.message);
        }
      }
      ++replies_this_frame;
      record_reply(report, options, i, frame, reply);
    }
    ++report.frames;
    // The accounting half of the contract: one line in (oversized or
    // not), exactly one reply out — except a zero-length line, which the
    // framer swallows as a keep-alive no-op.
    const std::int64_t expected = frame.empty() ? 0 : 1;
    if (replies_this_frame != expected) {
      report.violations.push_back(
          {i, replies_this_frame < expected ? "no_reply" : "extra_reply",
           std::to_string(replies_this_frame) + " replies for one frame",
           truncate_for_report(frame)});
    }
  }
  return report;
}

namespace {

int connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all_torn(int fd, const std::string& payload, Engine& eng) {
  // Random-sized partial writes: the server's framer must reassemble
  // frames regardless of how the bytes are torn on the wire.
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        payload.size() - sent, 1 + rng::uniform_below(eng, 1400));
    const ssize_t n = ::send(fd, payload.data() + sent, chunk, MSG_NOSIGNAL);
    if (n <= 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FuzzReport fuzz_server(const std::string& host, int port,
                       const FuzzOptions& options) {
  FuzzReport report;
  const int fd = connect_to(host, port);
  if (fd < 0) {
    report.violations.push_back(
        {-1, "connect_failed",
         host + ":" + std::to_string(port) + ": " + std::strerror(errno),
         ""});
    return report;
  }
  Engine tear_eng(rng::substream(options.seed, 0xFEED));
  // Replies can be larger than requests (list_cells); budget generously
  // but keep a cap so a reply-side runaway is caught.
  serve::LineReader reader(1 << 20);
  const int batch = std::max(options.batch, 1);
  std::int64_t next_frame = 0;
  while (next_frame < options.frames && report.ok()) {
    const std::int64_t batch_begin = next_frame;
    const std::int64_t batch_end =
        std::min<std::int64_t>(options.frames, next_frame + batch);
    std::string payload;
    std::string first_frame;
    std::int64_t expected_replies = 0;
    for (; next_frame < batch_end; ++next_frame) {
      std::string frame = fuzz_frame(options.seed, next_frame);
      if (first_frame.empty()) first_frame = frame;
      // Zero-length lines are keep-alive no-ops on the server; every
      // other line (oversized included) yields exactly one reply.
      if (!frame.empty()) ++expected_replies;
      payload += frame;
      payload += '\n';
    }
    if (!send_all_torn(fd, payload, tear_eng)) {
      report.violations.push_back(
          {batch_begin, "connection_lost",
           std::string("send failed: ") + std::strerror(errno),
           truncate_for_report(first_frame)});
      break;
    }
    report.frames += batch_end - batch_begin;

    // Collect exactly one reply per non-empty frame of the batch, under
    // a deadline; silence past it means the server hung or dropped
    // replies.
    std::int64_t pending = expected_replies;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options.reply_timeout_ms);
    char buf[8192];
    while (pending > 0) {
      std::string line;
      bool got_line = false;
      for (;;) {
        const serve::LineReader::Next next = reader.next_line(line);
        if (next == serve::LineReader::Next::kLine) {
          got_line = true;
          break;
        }
        if (next == serve::LineReader::Next::kOversized) {
          report.violations.push_back({batch_begin, "bad_reply",
                                       "reply exceeded 1 MiB", ""});
          got_line = false;
        }
        break;
      }
      if (got_line) {
        record_reply(report, options, batch_end - pending, "", line);
        --pending;
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        report.violations.push_back(
            {batch_end - pending, "no_reply",
             std::to_string(pending) + " replies still missing after " +
                 std::to_string(options.reply_timeout_ms) + "ms",
             truncate_for_report(first_frame)});
        break;
      }
      pollfd pfd{fd, POLLIN, 0};
      const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - now)
                               .count();
      const int rc =
          ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                              wait_ms, 1000)));
      if (rc < 0 && errno != EINTR) {
        report.violations.push_back({batch_begin, "connection_lost",
                                     std::string("poll failed: ") +
                                         std::strerror(errno),
                                     ""});
        break;
      }
      if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n == 0) {
          report.violations.push_back(
              {batch_end - pending, "connection_lost",
               "server closed the connection mid-batch",
               truncate_for_report(first_frame)});
          break;
        }
        if (n < 0) {
          if (errno == EINTR) continue;
          report.violations.push_back({batch_begin, "connection_lost",
                                       std::string("recv failed: ") +
                                           std::strerror(errno),
                                       ""});
          break;
        }
        reader.feed(buf, static_cast<std::size_t>(n));
      }
    }
  }
  ::close(fd);
  return report;
}

std::string fuzz_repro(const FuzzViolation& violation,
                       const FuzzOptions& options) {
  return "CERTIFY FAIL suite=protocol frame=" +
         std::to_string(violation.frame_index) + " kind=" + violation.kind +
         " detail=" + violation.detail +
         " | rerun: certify_runner --suite=protocol --seed=" +
         std::to_string(options.seed) + " --frames=" +
         std::to_string(options.frames);
}

}  // namespace recover::certify
