// Scenario B (§2, §5): the protocol the paper calls I_B.
//
// Repeatedly: remove one ball from a non-empty bin chosen i.u.r.
// (distribution ℬ(v) of Definition 3.3 — uniform over the s non-empty
// bins), then place a new ball with the scheduling rule.  With ABKU[d]
// this is I_B-ABKU[d]; with ADAP(x) it is I_B-ADAP(x).
//
// The paper finds this removal model genuinely harder than scenario A:
// Claim 5.3 gives τ(ε) = O(n m² ln ε⁻¹) via a simple path coupling, the
// (deferred) full version improves it to Õ(m²), and τ ≥ Ω(max(n·m, m²))
// for large m.
#pragma once

#include <utility>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"

namespace recover::balls {

template <typename Rule>
class ScenarioBChain {
 public:
  using State = LoadVector;

  ScenarioBChain(LoadVector init, Rule rule)
      : state_(std::move(init)), rule_(std::move(rule)) {
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const LoadVector& state() const { return state_; }
  [[nodiscard]] LoadVector& mutable_state() { return state_; }
  void set_state(LoadVector s) {
    RL_REQUIRE(s.balls() == state_.balls());
    RL_REQUIRE(s.bins() == state_.bins());
    state_ = std::move(s);
  }

  [[nodiscard]] const Rule& rule() const { return rule_; }
  [[nodiscard]] std::size_t bins() const { return state_.bins(); }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }

  /// One phase: remove via ℬ(v), insert via the rule.
  template <typename Engine>
  void step(Engine& eng) {
    const std::size_t i = state_.sample_nonempty_uniform(eng);
    state_.remove_at(i);
    ProbeFresh<Engine> probe(eng, state_.bins());
    state_.add_at(rule_.place_index(state_, probe));
  }

 private:
  LoadVector state_;
  Rule rule_;
};

/// Exact removal pmf of ℬ(v) over sorted indices (Definition 3.3):
/// p_i = 1/s for i < s, else 0.
std::vector<double> scenario_b_removal_pmf(const LoadVector& v);

}  // namespace recover::balls
