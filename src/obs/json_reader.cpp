#include "src/obs/json_reader.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace recover::obs {

namespace {

/// Nesting cap for arrays/objects.  The reader is recursive descent and
/// is fed untrusted network bytes (serve wire protocol), so without a
/// cap a line of a few thousand '[' characters — well under the frame
/// size cap — would recurse one stack frame per bracket and overflow the
/// parsing thread's stack.  Nothing the repo emits or accepts on the
/// wire nests more than a handful of levels deep.
constexpr std::size_t kMaxDepth = 64;

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();  // trailing garbage = torn input
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.text);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_hex4(unsigned& code) {
    if (pos_ + 4 > text_.size()) return false;
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: the low half must follow as another
            // \uXXXX escape (the only JSON spelling of an astral
            // code point).
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return false;
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return false;
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::strchr("+-.eE0123456789", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (depth_ >= kMaxDepth) return false;
    ++depth_;  // failure aborts the whole parse, so only unwind on success
    ++pos_;    // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (depth_ >= kMaxDepth) return false;
    ++depth_;  // failure aborts the whole parse, so only unwind on success
    ++pos_;    // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue& out) {
  return JsonReader(text).parse(out);
}

}  // namespace recover::obs
