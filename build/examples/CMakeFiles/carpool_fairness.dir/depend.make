# Empty dependencies file for carpool_fairness.
# This may be replaced when dependencies are built.
