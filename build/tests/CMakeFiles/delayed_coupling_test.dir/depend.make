# Empty dependencies file for delayed_coupling_test.
# This may be replaced when dependencies are built.
