#include "src/rng/alias.hpp"

#include <numeric>

#include "src/util/assert.hpp"

namespace recover::rng {

AliasTable::AliasTable(const std::vector<double>& weights)
    : prob_(weights.size(), 0.0),
      alias_(weights.size(), 0),
      normalized_(weights.size(), 0.0) {
  RL_REQUIRE(!weights.empty());
  double sum = 0;
  for (double w : weights) {
    RL_REQUIRE(w >= 0);
    sum += w;
  }
  RL_REQUIRE(sum > 0);

  const auto n = weights.size();
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / sum;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

double AliasTable::probability(std::size_t i) const {
  RL_REQUIRE(i < normalized_.size());
  return normalized_[i];
}

}  // namespace recover::rng
