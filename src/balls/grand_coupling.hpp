// Grand couplings: full couplings of two copies of I_A / I_B from
// *arbitrary* state pairs, used to measure coalescence times.
//
// The Path Coupling Lemma only needs a coupling on adjacent pairs Γ; a
// simulation that starts two copies at extremal states needs a coupling
// defined everywhere.  We use the natural quantile couplings:
//
//   scenario A — draw one shared ball rank t uniform on [0, m) and remove
//     the bin holding the t-th ball (in sorted order) in each copy; each
//     marginal is exactly 𝒜(v).
//   scenario B — draw one shared quantile w uniform on [0, 1) and remove
//     bin ⌊w·s⌋ in a copy with s non-empty bins; each marginal is ℬ(v).
//
// Insertions share the probe sequence (Lemma 3.3), so once the copies
// meet they move identically forever; the first meeting time
// stochastically dominates the TV mixing behaviour and is the standard
// simulation-side estimate of the recovery time.  exp09 validates it
// against exact mixing times on small state spaces.
#pragma once

#include <utility>

#include "src/balls/coupling_common.hpp"
#include "src/rng/distributions.hpp"

namespace recover::balls {

template <typename Rule>
class GrandCouplingA {
 public:
  GrandCouplingA(LoadVector x, LoadVector y, Rule rule)
      : x_(std::move(x)), y_(std::move(y)), rule_(std::move(rule)) {
    RL_REQUIRE(x_.bins() == y_.bins());
    RL_REQUIRE(x_.balls() == y_.balls());
    RL_REQUIRE(x_.balls() > 0);
  }

  template <typename Engine>
  void step(Engine& eng) {
    const auto t = static_cast<std::int64_t>(rng::uniform_below(
        eng, static_cast<std::uint64_t>(x_.balls())));
    x_.remove_at(x_.ball_at_quantile(t));
    y_.remove_at(y_.ball_at_quantile(t));
    coupled_place(rule_, x_, y_, eng);
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.distance(y_); }
  [[nodiscard]] const LoadVector& first() const { return x_; }
  [[nodiscard]] const LoadVector& second() const { return y_; }

 private:
  LoadVector x_;
  LoadVector y_;
  Rule rule_;
};

template <typename Rule>
class GrandCouplingB {
 public:
  GrandCouplingB(LoadVector x, LoadVector y, Rule rule)
      : x_(std::move(x)), y_(std::move(y)), rule_(std::move(rule)) {
    RL_REQUIRE(x_.bins() == y_.bins());
    RL_REQUIRE(x_.balls() == y_.balls());
    RL_REQUIRE(x_.balls() > 0);
  }

  template <typename Engine>
  void step(Engine& eng) {
    const double w = rng::uniform_real(eng);
    const auto pick = [w](const LoadVector& v) {
      const auto s = static_cast<double>(v.nonempty_count());
      auto i = static_cast<std::size_t>(w * s);
      if (i >= v.nonempty_count()) i = v.nonempty_count() - 1;
      return i;
    };
    x_.remove_at(pick(x_));
    y_.remove_at(pick(y_));
    coupled_place(rule_, x_, y_, eng);
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.distance(y_); }
  [[nodiscard]] const LoadVector& first() const { return x_; }
  [[nodiscard]] const LoadVector& second() const { return y_; }

 private:
  LoadVector x_;
  LoadVector y_;
  Rule rule_;
};

}  // namespace recover::balls
