// Tests for the partition state space and exact transition laws.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/balls/exact_chain.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/certify/check.hpp"
#include "src/certify/compare.hpp"
#include "src/rng/engines.hpp"

namespace recover::balls {
namespace {

TEST(PartitionSpace, EnumeratesPartitionCounts) {
  // p(m into <= n parts): p(4 into <= 2) = 3: (4,0) (3,1) (2,2).
  EXPECT_EQ(PartitionSpace(2, 4).size(), 3u);
  // Partitions of 6 into <= 3 parts: 654... count = 7.
  EXPECT_EQ(PartitionSpace(3, 6).size(), 7u);
  // Unrestricted partitions of 8 (n >= m): p(8) = 22.
  EXPECT_EQ(PartitionSpace(8, 8).size(), 22u);
}

TEST(PartitionSpace, IndexLookupRoundTrips) {
  const PartitionSpace space(4, 7);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.index_of(space.load_vector(i)), i);
  }
}

TEST(PartitionSpace, NamedStatesExist) {
  const PartitionSpace space(4, 9);
  const auto balanced = space.state(space.balanced_index());
  EXPECT_EQ(balanced, (std::vector<std::int64_t>{3, 2, 2, 2}));
  const auto crash = space.state(space.all_in_one_index());
  EXPECT_EQ(crash, (std::vector<std::int64_t>{9, 0, 0, 0}));
}

TEST(ExactChain, RowsAreStochasticAndFinalizeValidates) {
  const PartitionSpace space(3, 5);
  const auto chain =
      build_exact_chain(space, RemovalKind::kBallWeighted, AbkuRule(2));
  for (std::size_t i = 0; i < chain.states(); ++i) {
    double sum = 0;
    for (const auto& [j, p] : chain.row(i)) {
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(ExactChain, MatchesSimulatedOneStepLaw) {
  // The exact transition row must match the empirical distribution of
  // one simulated I_A / I_B step from the same state (χ² via the
  // certification harness, not per-state tolerances).
  const std::uint64_t seed = certify::test_master_seed(123);
  SCOPED_TRACE(certify::seed_banner(seed));
  const PartitionSpace space(4, 6);
  for (const auto removal :
       {RemovalKind::kBallWeighted, RemovalKind::kNonEmptyUniform}) {
    const auto chain = build_exact_chain(space, removal, AbkuRule(2));
    const std::size_t start = space.all_in_one_index();
    std::vector<double> probs(space.size(), 0.0);
    for (const auto& [j, p] : chain.row(start)) probs[j] = p;
    rng::Xoshiro256PlusPlus eng(seed);
    const auto check = certify::check_sampled_index_law(
        probs,
        [&] {
          if (removal == RemovalKind::kBallWeighted) {
            ScenarioAChain<AbkuRule> c(space.load_vector(start), AbkuRule(2));
            c.step(eng);
            return space.index_of(c.state());
          }
          ScenarioBChain<AbkuRule> c(space.load_vector(start), AbkuRule(2));
          c.step(eng);
          return space.index_of(c.state());
        },
        120000);
    EXPECT_TRUE(check.pass(1e-6))
        << "removal " << (removal == RemovalKind::kBallWeighted ? "A" : "B")
        << ": " << check.describe();
  }
}

TEST(ExactChain, StationaryDistributionIsFixedPoint) {
  const PartitionSpace space(4, 8);
  const auto chain =
      build_exact_chain(space, RemovalKind::kBallWeighted, AbkuRule(2));
  const auto pi = core::stationary_distribution(chain);
  std::vector<double> evolved = pi;
  chain.evolve(evolved);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(evolved[i], pi[i], 1e-9);
  }
  double sum = 0;
  for (const double p : pi) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ExactChain, StationaryFavorsBalancedForD2) {
  // With two choices the balanced partition carries far more stationary
  // mass than the crash partition.
  const PartitionSpace space(4, 8);
  const auto chain =
      build_exact_chain(space, RemovalKind::kBallWeighted, AbkuRule(2));
  const auto pi = core::stationary_distribution(chain);
  EXPECT_GT(pi[space.balanced_index()],
            100.0 * pi[space.all_in_one_index()]);
}

TEST(PerStartTv, CrashStateIsWorstForBallsChains) {
  const PartitionSpace space(5, 5);
  for (const auto removal :
       {RemovalKind::kBallWeighted, RemovalKind::kNonEmptyUniform}) {
    const auto chain = build_exact_chain(space, removal, AbkuRule(2));
    const auto pi = core::stationary_distribution(chain);
    const auto exact = core::exact_mixing_time(chain, pi, 0.25, 4000);
    ASSERT_GT(exact.mixing_time, 0);
    const auto tv = core::per_start_tv(
        chain, pi, std::max<std::int64_t>(1, exact.mixing_time / 2));
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < tv.size(); ++i) {
      if (tv[i] > tv[argmax]) argmax = i;
    }
    EXPECT_EQ(argmax, space.all_in_one_index());
    // Consistency: per-start max at t equals worst_tv_by_t[t-1].
    const auto mid = std::max<std::int64_t>(1, exact.mixing_time / 2);
    EXPECT_NEAR(tv[argmax],
                exact.worst_tv_by_t[static_cast<std::size_t>(mid - 1)],
                1e-9);
  }
}

TEST(ExactMixing, WorstCaseTvDecreasesAndHitsEpsilon) {
  const PartitionSpace space(3, 6);
  const auto chain =
      build_exact_chain(space, RemovalKind::kBallWeighted, AbkuRule(2));
  const auto pi = core::stationary_distribution(chain);
  const auto result = core::exact_mixing_time(chain, pi, 0.25, 10000);
  ASSERT_GT(result.mixing_time, 0);
  // Worst-case TV is non-increasing in t for these chains.
  for (std::size_t t = 1; t < result.worst_tv_by_t.size(); ++t) {
    EXPECT_LE(result.worst_tv_by_t[t], result.worst_tv_by_t[t - 1] + 1e-12);
  }
}

TEST(ExactChain, AdapPlacementLawMatchesSimulatedSteps) {
  // The general builder with ADAP's exact placement pmf must reproduce
  // the simulated one-step law of I_A-ADAP(x).
  const std::uint64_t seed = certify::test_master_seed(321);
  SCOPED_TRACE(certify::seed_banner(seed));
  const PartitionSpace space(4, 6);
  const AdapRule rule{ThresholdSchedule::linear(1, 1, 3)};
  const auto chain = build_exact_chain_general(
      space, RemovalKind::kBallWeighted,
      [&rule](const LoadVector& v) { return rule.placement_pmf(v); });
  const std::size_t start = space.all_in_one_index();
  std::vector<double> probs(space.size(), 0.0);
  for (const auto& [j, p] : chain.row(start)) probs[j] = p;
  rng::Xoshiro256PlusPlus eng(seed);
  const auto check = certify::check_sampled_index_law(
      probs,
      [&] {
        ScenarioAChain<AdapRule> c(space.load_vector(start), rule);
        c.step(eng);
        return space.index_of(c.state());
      },
      120000);
  EXPECT_TRUE(check.pass(1e-6)) << check.describe();
}

TEST(ExactMixing, Theorem1BoundDominatesExactMixingForAdapToo) {
  // "Any right-oriented rule": the adaptive schedule obeys the same
  // Theorem 1 bound, here at the exact level.
  for (const std::int64_t m : {5, 6, 7}) {
    const PartitionSpace space(static_cast<std::size_t>(m), m);
    const AdapRule rule{ThresholdSchedule::linear(1, 1, 3)};
    const auto chain = build_exact_chain_general(
        space, RemovalKind::kBallWeighted,
        [&rule](const LoadVector& v) { return rule.placement_pmf(v); });
    const auto pi = core::stationary_distribution(chain);
    const auto result = core::exact_mixing_time(chain, pi, 0.25, 5000);
    ASSERT_GT(result.mixing_time, 0);
    const double bound = static_cast<double>(m) *
                         std::log(4.0 * static_cast<double>(m));
    EXPECT_LE(static_cast<double>(result.mixing_time), std::ceil(bound));
  }
}

TEST(ExactMixing, Theorem1BoundDominatesExactMixing) {
  // τ_exact(1/4) ≤ ⌈m ln(4m)⌉ must hold for every small instance.
  for (const std::int64_t m : {4, 6, 8}) {
    const PartitionSpace space(static_cast<std::size_t>(m), m);
    const auto chain =
        build_exact_chain(space, RemovalKind::kBallWeighted, AbkuRule(2));
    const auto pi = core::stationary_distribution(chain);
    const auto result = core::exact_mixing_time(chain, pi, 0.25, 5000);
    ASSERT_GT(result.mixing_time, 0);
    const double bound = static_cast<double>(m) *
                         std::log(4.0 * static_cast<double>(m));
    EXPECT_LE(static_cast<double>(result.mixing_time), std::ceil(bound));
  }
}

}  // namespace
}  // namespace recover::balls
