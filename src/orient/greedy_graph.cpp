#include "src/orient/greedy_graph.hpp"

#include <algorithm>
#include <numeric>

namespace recover::orient {

GreedyOrienter::GreedyOrienter(std::size_t n) : diff_(n, 0) {
  RL_REQUIRE(n >= 2);
}

GreedyOrienter GreedyOrienter::from_diffs(std::vector<std::int64_t> diffs) {
  RL_REQUIRE(diffs.size() >= 2);
  const auto sum =
      std::accumulate(diffs.begin(), diffs.end(), std::int64_t{0});
  RL_REQUIRE(sum == 0);
  GreedyOrienter g(diffs.size());
  g.diff_ = std::move(diffs);
  return g;
}

std::int64_t GreedyOrienter::unfairness() const {
  std::int64_t worst = 0;
  for (const std::int64_t d : diff_) {
    worst = std::max(worst, std::abs(d));
  }
  return worst;
}

KSubsetCarpool::KSubsetCarpool(std::size_t participants,
                               std::size_t pool_size)
    : balance_(participants, 0), k_(pool_size) {
  RL_REQUIRE(pool_size >= 2);
  RL_REQUIRE(pool_size <= participants);
}

double KSubsetCarpool::unfairness() const {
  std::int64_t worst = 0;
  for (const std::int64_t b : balance_) {
    worst = std::max(worst, std::abs(b));
  }
  return static_cast<double>(worst) / static_cast<double>(k_);
}

void KSubsetCarpool::run_pool(const std::vector<std::size_t>& pool) {
  RL_REQUIRE(pool.size() == k_);
  std::size_t driver = pool[0];
  for (const std::size_t p : pool) {
    RL_REQUIRE(p < balance_.size());
    if (balance_[p] < balance_[driver]) driver = p;
  }
  for (const std::size_t p : pool) balance_[p] -= 1;
  balance_[driver] += static_cast<std::int64_t>(k_);
  ++days_;
}

void GreedyOrienter::orient_edge(std::size_t a, std::size_t b, bool tie_bit) {
  RL_REQUIRE(a < diff_.size() && b < diff_.size());
  RL_REQUIRE(a != b);
  std::size_t source = a;
  std::size_t target = b;
  if (diff_[a] > diff_[b] || (diff_[a] == diff_[b] && tie_bit)) {
    // Orient from the smaller difference to the larger: b → a.
    source = b;
    target = a;
  }
  ++diff_[source];  // source gains an outgoing edge
  --diff_[target];  // target gains an incoming edge
  ++edges_;
}

}  // namespace recover::orient
