#include "src/ops/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/run_record.hpp"
#include "src/obs/trace.hpp"
#include "src/ops/prometheus.hpp"

namespace recover::ops {

namespace {

/// Poll tick while idle: the latency with which the admin thread
/// notices stop() (same discipline as the serve accept loop).
constexpr int kPollTimeoutMs = 100;

obs::Counter& admin_requests_counter() {
  static obs::Counter& c = obs::Registry::global().counter("ops.admin.requests");
  return c;
}
obs::Histogram& admin_request_ns_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("ops.admin.request_ns");
  return h;
}

std::uint64_t now_ms() {
  return obs::trace::now_ns() / 1'000'000u;
}

std::string http_response(const char* status, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone or send timeout — drop the rest
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

AdminServer::AdminServer(AdminOptions options, MetricsFn metrics,
                         ReadyFn ready)
    : options_(std::move(options)),
      metrics_(std::move(metrics)),
      ready_(std::move(ready)) {
  if (options_.client_timeout_ms < 1) options_.client_timeout_ms = 1;
  if (options_.max_request_bytes < 64) options_.max_request_bytes = 64;
}

AdminServer::~AdminServer() { stop(); }

bool AdminServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "ops.admin: socket: %s\n", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "ops.admin: bad host '%s'\n", options_.host.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    std::fprintf(stderr, "ops.admin: bind %s:%d: %s\n", options_.host.c_str(),
                 options_.port, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    std::fprintf(stderr, "ops.admin: listen: %s\n", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  started_ = true;
  thread_ = std::thread([this] {
    obs::trace::set_thread_name("ops.admin");
    loop();
  });
  return true;
}

void AdminServer::loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      break;  // listen socket gone
    }
    serve_connection(fd);
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::serve_connection(int fd) {
  obs::ScopedSpan span(admin_request_ns_histogram());
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  admin_requests_counter().add();

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  // SO_SNDTIMEO bounds the response write the same way the poll deadline
  // below bounds the request read: a stalled peer costs at most
  // client_timeout_ms, then the connection is dropped.
  timeval tv{};
  tv.tv_sec = options_.client_timeout_ms / 1000;
  tv.tv_usec =
      static_cast<suseconds_t>(options_.client_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  // Read the request (start line + headers) into a bounded buffer under
  // a wall-clock deadline.  We stop at the header terminator; any body a
  // confused client attached is ignored (GET has none).
  std::string request;
  const std::uint64_t deadline =
      now_ms() + static_cast<std::uint64_t>(options_.client_timeout_ms);
  bool complete = false;
  bool timed_out = false;
  char buf[2048];
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t now = now_ms();
    if (now >= deadline) {
      timed_out = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(deadline - now));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) {
      timed_out = true;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) break;  // peer closed before finishing the request
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return;
    }
    request.append(buf, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
    if (request.size() > options_.max_request_bytes) break;  // oversized
  }

  if (timed_out) {
    send_all(fd, http_response("408 Request Timeout", "text/plain",
                               "request timed out\n"));
    return;
  }
  if (!complete) {
    send_all(fd, http_response("400 Bad Request", "text/plain",
                               "malformed or oversized request\n"));
    return;
  }

  // Parse the start line: METHOD SP PATH SP VERSION.
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string start_line = request.substr(0, line_end);
  const std::size_t sp1 = start_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_all(fd, http_response("400 Bad Request", "text/plain",
                               "malformed request line\n"));
    return;
  }
  const std::string method = start_line.substr(0, sp1);
  std::string path = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);  // probes sometimes append cache-busting queries
  }

  if (method != "GET" && method != "HEAD") {
    send_all(fd, http_response("405 Method Not Allowed", "text/plain",
                               "only GET is supported\n"));
    return;
  }

  std::string response;
  if (path == "/metrics") {
    std::string body = metrics_ ? metrics_() : std::string();
    if (!options_.build_version.empty()) {
      append_build_info(body, options_.build_version, obs::git_revision());
    }
    response = http_response(
        "200 OK", "text/plain; version=0.0.4; charset=utf-8", body);
  } else if (path == "/healthz") {
    response = http_response("200 OK", "text/plain", "ok\n");
  } else if (path == "/readyz") {
    const bool is_ready = ready_ && ready_();
    response = is_ready
                   ? http_response("200 OK", "text/plain", "ready\n")
                   : http_response("503 Service Unavailable", "text/plain",
                                   "not ready\n");
  } else {
    response = http_response("404 Not Found", "text/plain",
                             "unknown path (try /metrics, /healthz, "
                             "/readyz)\n");
  }
  send_all(fd, response);
}

void AdminServer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

}  // namespace recover::ops
