#include "src/orient/coupling.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

namespace recover::orient {

CountState::CountState(std::size_t levels, std::size_t vertices)
    : x_(levels, 0), n_(vertices) {
  RL_REQUIRE(levels >= 1);
}

CountState CountState::from_counts(std::vector<std::int64_t> counts) {
  RL_REQUIRE(!counts.empty());
  std::int64_t n = 0;
  for (auto c : counts) {
    RL_REQUIRE(c >= 0);
    n += c;
  }
  RL_REQUIRE(n >= 2);
  CountState s(counts.size(), static_cast<std::size_t>(n));
  s.x_ = std::move(counts);
  return s;
}

CountState CountState::from_diff_state(const DiffState& s,
                                       std::size_t padding) {
  const std::int64_t hi = s.diff(0);
  const std::int64_t lo = s.diff(s.vertices() - 1);
  const auto span = static_cast<std::size_t>(hi - lo) + 1;
  std::vector<std::int64_t> counts(span + 2 * padding, 0);
  for (std::size_t r = 0; r < s.vertices(); ++r) {
    // Level 0 = highest difference; level grows as the difference falls.
    const auto level = padding + static_cast<std::size_t>(hi - s.diff(r));
    ++counts[level];
  }
  return from_counts(std::move(counts));
}

std::size_t CountState::level_of_rank(std::size_t rank) const {
  RL_DBG_ASSERT(rank < n_);
  std::int64_t cum = 0;
  for (std::size_t l = 0; l < x_.size(); ++l) {
    cum += x_[l];
    if (static_cast<std::int64_t>(rank) < cum) return l;
  }
  RL_DBG_ASSERT(false);
  return x_.size() - 1;
}

void CountState::apply_transition(std::size_t i, std::size_t j) {
  RL_REQUIRE(i <= j);
  RL_REQUIRE(j < x_.size());
  RL_REQUIRE(i + 1 < x_.size());
  RL_REQUIRE(j >= 1);
  RL_REQUIRE(x_[i] >= (i == j ? 2 : 1));
  RL_REQUIRE(x_[j] >= 1);
  --x_[i];
  ++x_[i + 1];
  --x_[j];
  ++x_[j - 1];
}

bool CountState::invariants_hold() const {
  std::int64_t n = 0;
  for (auto c : x_) {
    if (c < 0) return false;
    n += c;
  }
  return static_cast<std::size_t>(n) == n_;
}

namespace {

CountState with_delta(const CountState& x,
                      const std::vector<std::pair<std::size_t, std::int64_t>>&
                          delta) {
  std::vector<std::int64_t> counts = x.counts();
  for (const auto& [idx, d] : delta) {
    counts[idx] += d;
    RL_REQUIRE(counts[idx] >= 0);
  }
  return CountState::from_counts(std::move(counts));
}

bool nonneg_after(const CountState& x,
                  const std::vector<std::pair<std::size_t, std::int64_t>>&
                      delta) {
  for (const auto& [idx, d] : delta) {
    if (x.counts()[idx] + d < 0) return false;
  }
  return true;
}

}  // namespace

std::vector<CountState> gbar_neighbors(const CountState& x) {
  std::vector<CountState> out;
  const std::size_t K = x.levels();
  for (std::size_t lambda = 0; lambda + 2 < K; ++lambda) {
    // y with x = y + e_λ − 2e_{λ+1} + e_{λ+2}  (x is the "upper" state).
    const std::vector<std::pair<std::size_t, std::int64_t>> fwd = {
        {lambda, -1}, {lambda + 1, +2}, {lambda + 2, -1}};
    if (nonneg_after(x, fwd)) out.push_back(with_delta(x, fwd));
    // y with y = x + e_λ − 2e_{λ+1} + e_{λ+2}  (y is the upper state).
    const std::vector<std::pair<std::size_t, std::int64_t>> bwd = {
        {lambda, +1}, {lambda + 1, -2}, {lambda + 2, +1}};
    if (nonneg_after(x, bwd)) out.push_back(with_delta(x, bwd));
  }
  return out;
}

std::vector<std::pair<CountState, std::int64_t>> sbar_neighbors(
    const CountState& x) {
  std::vector<std::pair<CountState, std::int64_t>> out;
  const std::size_t K = x.levels();
  for (std::size_t lambda = 0; lambda + 3 < K; ++lambda) {
    for (std::size_t k = 2; lambda + k + 1 < K; ++k) {
      // Forward: x = y + e_λ − e_{λ+1} − e_{λ+k} + e_{λ+k+1}; the upper
      // state (x) must be empty strictly between λ and λ+k+1.
      bool middle_empty = true;
      for (std::size_t l = lambda + 1; l <= lambda + k; ++l) {
        if (x.counts()[l] != 0) {
          middle_empty = false;
          break;
        }
      }
      if (middle_empty) {
        const std::vector<std::pair<std::size_t, std::int64_t>> fwd = {
            {lambda, -1},
            {lambda + 1, +1},
            {lambda + k, +1},
            {lambda + k + 1, -1}};
        if (nonneg_after(x, fwd)) {
          out.emplace_back(with_delta(x, fwd),
                           static_cast<std::int64_t>(k));
        }
      }
      // Backward: y = x + e_λ − e_{λ+1} − e_{λ+k} + e_{λ+k+1} and the
      // upper state (y) must have empty middle, i.e. x_{λ+1} = x_{λ+k} = 1
      // and x empty strictly between.
      if (x.counts()[lambda + 1] == 1 && x.counts()[lambda + k] == 1) {
        bool inner_empty = true;
        for (std::size_t l = lambda + 2; l + 1 <= lambda + k; ++l) {
          if (x.counts()[l] != 0) {
            inner_empty = false;
            break;
          }
        }
        // For k = 2 the λ+1 and λ+k runs are adjacent; inner range empty.
        if (inner_empty) {
          const std::vector<std::pair<std::size_t, std::int64_t>> bwd = {
              {lambda, +1},
              {lambda + 1, -1},
              {lambda + k, -1},
              {lambda + k + 1, +1}};
          if (nonneg_after(x, bwd)) {
            out.emplace_back(with_delta(x, bwd),
                             static_cast<std::int64_t>(k));
          }
        }
      }
    }
  }
  return out;
}

std::optional<std::int64_t> orientation_distance(const CountState& x,
                                                 const CountState& y,
                                                 std::int64_t limit) {
  RL_REQUIRE(x.levels() == y.levels());
  RL_REQUIRE(x.vertices() == y.vertices());
  RL_REQUIRE(limit >= 0);
  if (x == y) return 0;
  using Key = std::vector<std::int64_t>;
  std::map<Key, std::int64_t> dist;
  using QEntry = std::pair<std::int64_t, Key>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;
  dist[x.counts()] = 0;
  queue.push({0, x.counts()});
  while (!queue.empty()) {
    const auto [d, key] = queue.top();
    queue.pop();
    const auto it = dist.find(key);
    if (it != dist.end() && it->second < d) continue;  // stale entry
    if (d > limit) return std::nullopt;
    if (key == y.counts()) return d;
    const CountState state = CountState::from_counts(key);
    auto relax = [&](const CountState& next, std::int64_t w) {
      const std::int64_t nd = d + w;
      if (nd > limit) return;
      const auto found = dist.find(next.counts());
      if (found == dist.end() || nd < found->second) {
        dist[next.counts()] = nd;
        queue.push({nd, next.counts()});
      }
    };
    for (const auto& nb : gbar_neighbors(state)) relax(nb, 1);
    for (const auto& [nb, k] : sbar_neighbors(state)) relax(nb, k);
  }
  return std::nullopt;
}

GammaDecomposition decompose_gamma_pair(const CountState& x,
                                        const CountState& y) {
  RL_REQUIRE(x.levels() == y.levels());
  RL_REQUIRE(x.vertices() == y.vertices());
  const std::size_t K = x.levels();
  std::vector<std::int64_t> d(K);
  for (std::size_t l = 0; l < K; ++l) {
    d[l] = x.counts()[l] - y.counts()[l];
  }
  std::vector<std::size_t> nonzero;
  for (std::size_t l = 0; l < K; ++l) {
    if (d[l] != 0) nonzero.push_back(l);
  }
  GammaDecomposition g;
  if (nonzero.size() == 3) {
    // 𝒢 pattern: ±(e_λ − 2e_{λ+1} + e_{λ+2}).
    const std::size_t lambda = nonzero[0];
    RL_REQUIRE(nonzero[1] == lambda + 1 && nonzero[2] == lambda + 2);
    g.lambda = lambda;
    g.k = 1;
    if (d[lambda] == 1 && d[lambda + 1] == -2 && d[lambda + 2] == 1) {
      g.x_is_upper = true;
    } else if (d[lambda] == -1 && d[lambda + 1] == 2 && d[lambda + 2] == -1) {
      g.x_is_upper = false;
    } else {
      RL_REQUIRE(false && "not a Gamma pair");
    }
    return g;
  }
  RL_REQUIRE(nonzero.size() == 4);
  // 𝒮_k pattern: ±(e_λ − e_{λ+1} − e_{λ+k} + e_{λ+k+1}).
  const std::size_t lambda = nonzero[0];
  RL_REQUIRE(nonzero[1] == lambda + 1);
  const std::size_t lk = nonzero[2];
  RL_REQUIRE(nonzero[3] == lk + 1);
  g.lambda = lambda;
  g.k = static_cast<std::int64_t>(lk - lambda);
  RL_REQUIRE(g.k >= 2);
  if (d[lambda] == 1 && d[lambda + 1] == -1 && d[lk] == -1 && d[lk + 1] == 1) {
    g.x_is_upper = true;
  } else if (d[lambda] == -1 && d[lambda + 1] == 1 && d[lk] == 1 &&
             d[lk + 1] == -1) {
    g.x_is_upper = false;
  } else {
    RL_REQUIRE(false && "not a Gamma pair");
  }
  // The upper state must be empty strictly between λ and λ+k+1.
  const CountState& upper = g.x_is_upper ? x : y;
  for (std::size_t l = lambda + 1; l <= lk; ++l) {
    RL_REQUIRE(upper.counts()[l] == 0);
  }
  return g;
}

}  // namespace recover::orient
