// Classic fixed-step RK4 integrator for small ODE systems.
//
// The fluid-limit substrate integrates Mitzenmacher's density-dependent
// jump-process limits; the systems are tiny (tens of equations), so a
// fixed-step fourth-order scheme is plenty and keeps results exactly
// reproducible.
#pragma once

#include <functional>
#include <vector>

namespace recover::fluid {

/// f(t, y, dydt): writes the derivative of y at time t into dydt.
using OdeFn = std::function<void(double, const std::vector<double>&,
                                 std::vector<double>&)>;

/// One RK4 step of size dt, in place.
void rk4_step(const OdeFn& f, double t, double dt, std::vector<double>& y);

/// Integrates from t0 to t1 with fixed step dt (last step shortened to
/// land exactly on t1); returns the final state.
std::vector<double> rk4_integrate(const OdeFn& f, std::vector<double> y0,
                                  double t0, double t1, double dt);

/// Integrates until ‖dy/dt‖_∞ < tol or t exceeds t_max; returns the
/// (approximate) fixed point.
std::vector<double> integrate_to_fixed_point(const OdeFn& f,
                                             std::vector<double> y0,
                                             double dt, double tol,
                                             double t_max);

}  // namespace recover::fluid
