// Empirical total-variation mixing estimation.
//
// Coalescence times upper-bound the mixing behaviour (coupling
// inequality); this module provides the complementary LOWER estimate:
// run many independent replicas of the chain from two different starts,
// project the state through an observable (max load, unfairness, …), and
// measure the TV distance between the two empirical distributions at
// chosen times.  Since projections only lose mass,
//     TV(observable_x(t), observable_y(t)) ≤ ‖L(M_t|x) − L(M_t|y)‖,
// the projected curve underestimates the true distance — together with
// the coalescence upper bound it brackets the recovery time from both
// sides (exp14 demonstrates the sandwich against exact values).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/kernel/kernel.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/assert.hpp"

namespace recover::core {

struct TvCurvePoint {
  std::int64_t t = 0;
  double tv = 0;
};

/// Runs `replicas` independent chains from each start and records the TV
/// distance between the empirical observable distributions at each
/// checkpoint (checkpoints must be strictly increasing step counts).
///
/// make_chain_x / make_chain_y: (replica) -> chain in the respective
/// start state.  observable: chain -> int64 statistic.
template <typename MakeChainX, typename MakeChainY, typename Observable>
std::vector<TvCurvePoint> estimate_tv_curve(
    MakeChainX&& make_chain_x, MakeChainY&& make_chain_y,
    Observable&& observable, const std::vector<std::int64_t>& checkpoints,
    int replicas, std::uint64_t seed, bool parallel = true) {
  RL_REQUIRE(!checkpoints.empty());
  RL_REQUIRE(replicas > 0);
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    RL_REQUIRE(checkpoints[i] > checkpoints[i - 1]);
  }
  RL_REQUIRE(checkpoints.front() > 0);

  const auto r = static_cast<std::size_t>(replicas);
  const std::size_t c = checkpoints.size();
  // values[side][checkpoint][replica]
  std::vector<std::vector<std::vector<std::int64_t>>> values(
      2, std::vector<std::vector<std::int64_t>>(
             c, std::vector<std::int64_t>(r, 0)));

  auto body = [&](std::uint64_t rep) {
    for (int side = 0; side < 2; ++side) {
      rng::Xoshiro256PlusPlus eng(rng::derive_stream_seed(
          seed + static_cast<std::uint64_t>(side) *
                     std::uint64_t{0x9E3779B9},
          rep));
      auto run = [&](auto chain) {
        std::int64_t t = 0;
        for (std::size_t k = 0; k < c; ++k) {
          kernel::advance(chain, eng, checkpoints[k] - t);
          t = checkpoints[k];
          values[static_cast<std::size_t>(side)][k][rep] = observable(chain);
        }
      };
      if (side == 0) {
        run(make_chain_x(static_cast<int>(rep)));
      } else {
        run(make_chain_y(static_cast<int>(rep)));
      }
    }
  };
  if (parallel) {
    parallel::parallel_for(r, body);
  } else {
    for (std::uint64_t rep = 0; rep < r; ++rep) body(rep);
  }

  std::vector<TvCurvePoint> curve;
  curve.reserve(c);
  for (std::size_t k = 0; k < c; ++k) {
    stats::IntHistogram hx, hy;
    for (std::size_t rep = 0; rep < r; ++rep) {
      hx.add(values[0][k][rep]);
      hy.add(values[1][k][rep]);
    }
    curve.push_back({checkpoints[k], stats::tv_distance(hx, hy)});
  }
  return curve;
}

/// First checkpoint whose TV estimate drops below eps; -1 if none does.
std::int64_t first_below(const std::vector<TvCurvePoint>& curve, double eps);

/// Geometrically spaced checkpoints {start, start*ratio, ...} capped at
/// `limit` (always includes limit as the last point).
std::vector<std::int64_t> geometric_checkpoints(std::int64_t start,
                                                double ratio,
                                                std::int64_t limit);

}  // namespace recover::core
