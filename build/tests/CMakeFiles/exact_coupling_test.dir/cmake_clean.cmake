file(REMOVE_RECURSE
  "CMakeFiles/exact_coupling_test.dir/exact_coupling_test.cpp.o"
  "CMakeFiles/exact_coupling_test.dir/exact_coupling_test.cpp.o.d"
  "exact_coupling_test"
  "exact_coupling_test.pdb"
  "exact_coupling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_coupling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
