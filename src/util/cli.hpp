// Minimal command-line flag parsing shared by examples and bench harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--name`.  Unknown
// flags abort with a usage listing so experiment sweeps fail loudly rather
// than silently running default parameters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace recover::util {

class Cli {
 public:
  /// `description` is printed at the top of --help output.
  Cli(std::string program, std::string description);

  /// Registers a flag; returns *this for chaining.  Must precede parse().
  Cli& flag(std::string name, std::string help, std::string default_value);

  /// Parses argv, prints a one-line `## program — description` banner
  /// (experiment outputs are routinely concatenated), and exits on
  /// --help (0) or unknown flags (2).
  void parse(int argc, const char* const* argv);

  /// Like parse(), but unknown `--flag[=value]` tokens are collected and
  /// returned instead of aborting — for binaries that forward leftovers
  /// to another flag parser (bench_microbench → google-benchmark).
  std::vector<std::string> parse_known(int argc, const char* const* argv);

  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;
  [[nodiscard]] bool boolean(const std::string& name) const;

  /// Duration flag in milliseconds: `500ms`, `2s`, `1.5s`, `1m`, or a
  /// bare number (taken as ms).  Exits with usage (2) on a malformed
  /// value so --deadline/--duration typos fail loudly before a run.
  [[nodiscard]] std::int64_t duration_ms(const std::string& name) const;

  /// Comma-separated integer list, e.g. --sizes=64,128,256.
  [[nodiscard]] std::vector<std::int64_t> int_list(
      const std::string& name) const;

  [[nodiscard]] std::string usage() const;

  [[nodiscard]] const std::string& program() const { return program_; }
  [[nodiscard]] const std::string& description() const {
    return description_;
  }

  /// Every registered flag with its current (post-parse) value, in
  /// registration order — recorded verbatim by the obs run recorder.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> entries()
      const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string value;
  };

  [[nodiscard]] const Flag* find(const std::string& name) const;
  Flag* find(const std::string& name);
  std::vector<std::string> parse_impl(int argc, const char* const* argv,
                                      bool collect_unknown);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
};

/// Parses a human duration into milliseconds: `500ms`, `2s`, `1.5s`,
/// `1m`, or a bare (possibly fractional) number meaning ms.  Fractions
/// are rounded to the nearest millisecond.  False on malformed input,
/// negative values, or overflow; `out` is untouched then.
bool parse_duration_ms(const std::string& text, std::int64_t& out);

}  // namespace recover::util
