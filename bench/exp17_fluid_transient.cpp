// Experiment E17 — the combined pipeline the paper proposes in §1:
// "our technique [is] especially powerful when applied together with the
// method of Mitzenmacher."
//
// Beyond the fixed point (exp10), the fluid ODE should track the WHOLE
// recovery trajectory: starting from the crash profile (all balls in one
// bin), the empirical mean tail fractions s_i(t) of the simulated
// I_A-ABKU[d] chain should follow the integrated ODE at matched times
// (one ODE time unit = n steps).  We report the worst absolute deviation
// max_i |s_i^sim(t) − s_i^ode(t)| at a sweep of times — it should be
// O(1/√(n·replicas)) small at every checkpoint, which is Kurtz's
// density-dependent-jump-process approximation made visible.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/scenario_a.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/kernel/kernel.hpp"
#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp17_fluid_transient",
                "E17: fluid ODE vs simulated recovery trajectory");
  cli.flag("n", "bins = balls", "1024");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("replicas", "simulation replicas", "24");
  cli.flag("levels", "tail levels tracked", "12");
  cli.flag("seed", "rng seed", "17");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto m = static_cast<std::int64_t>(n);
  const auto d = static_cast<int>(cli.integer("d"));
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto levels = static_cast<std::size_t>(cli.integer("levels"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  // Checkpoints in ODE time units (= n simulation steps each).
  const std::vector<double> times = {0.25, 0.5, 1, 2, 4, 8, 16};

  // Fluid side: integrate from the crash profile.
  fluid::FluidModel model(fluid::Scenario::kA, d, 1.0, levels);
  const auto crash_profile = fluid::tail_fractions(
      balls::LoadVector::all_in_one(n, m).loads(), levels);

  // Simulation side: replicas of the chain, averaged tails at each time.
  std::vector<std::vector<double>> sim(times.size(),
                                       std::vector<double>(levels, 0.0));
  for (int r = 0; r < replicas; ++r) {
    rng::Xoshiro256PlusPlus eng(
        rng::derive_stream_seed(seed, static_cast<std::uint64_t>(r)));
    balls::ScenarioAChain<balls::AbkuRule> chain(
        balls::LoadVector::all_in_one(n, m), balls::AbkuRule(d));
    std::int64_t steps_done = 0;
    for (std::size_t k = 0; k < times.size(); ++k) {
      const auto target =
          static_cast<std::int64_t>(times[k] * static_cast<double>(n));
      kernel::advance(chain, eng, target - steps_done);
      steps_done = target;
      const auto tails = fluid::tail_fractions(chain.state().loads(), levels);
      for (std::size_t i = 0; i < levels; ++i) sim[k][i] += tails[i];
    }
  }
  for (auto& row : sim) {
    for (double& v : row) v /= replicas;
  }

  util::Table table({"ODE time t", "steps", "s1_sim", "s1_ode", "s2_sim",
                     "s2_ode", "s3_sim", "s3_ode", "max|dev|"});
  auto profile = crash_profile;
  double prev_time = 0;
  for (std::size_t k = 0; k < times.size(); ++k) {
    profile = model.evolve(std::move(profile), times[k] - prev_time, 0.002);
    prev_time = times[k];
    double worst = 0;
    for (std::size_t i = 0; i < levels; ++i) {
      worst = std::max(worst, std::abs(sim[k][i] - profile[i]));
    }
    table.row()
        .num(times[k], 2)
        .integer(static_cast<std::int64_t>(times[k] * static_cast<double>(n)))
        .num(sim[k][0], 4)
        .num(profile[0], 4)
        .num(sim[k][1], 4)
        .num(profile[1], 4)
        .num(sim[k][2], 4)
        .num(profile[2], 4)
        .num(worst, 4);
  }
  table.print(std::cout);
  run.add_table("fluid_vs_simulation", table);
  std::printf(
      "\n# Kurtz approximation: the deviation column stays at the O(n^-1/2) "
      "noise floor through the entire recovery, so the fluid model "
      "predicts the typical band at every moment, and the path-coupling "
      "bound says when the chain is guaranteed to be inside it.\n");
  return 0;
}
